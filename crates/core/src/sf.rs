//! `GtTschSf` — the GT-TSCH scheduling function.
//!
//! Lifecycle of a non-root node:
//!
//! 1. **Boot** (`init`): install the single slotframe with broadcast
//!    timeslots (§IV rule 1). Everything else waits for RPL.
//! 2. **Join**: RPL picks a parent (`on_parent_changed`); the parent's EB
//!    advertises the channel `f_{i,p}` on which it receives from children
//!    (`on_eb`). The node installs shared timeslots towards the parent
//!    (§IV rule 4), negotiates two Unicast-6P timeslots (§IV rule 2) and
//!    asks for its own children-facing channel with the new 6P
//!    `ASK-CHANNEL` command (§III, Algorithm 1).
//! 3. **Steady state** (`periodic`, §VI): update the EWMA queue metric,
//!    compute the Tx-cell deficit `l_tx_min` (eq. 1) and, when positive,
//!    request the game-optimal number of Unicast-Data timeslots (eq. 15)
//!    from the parent via 6P ADD; release excess cells via 6P DELETE when
//!    traffic lightens.
//!
//! A parent answers ADD requests subject to its advertised Rx capacity
//! (the DIO `l_rx` option keeps each node's Tx count above its Rx count —
//! §V rule 1) and the §V placement rules, and answers `ASK-CHANNEL` with
//! Algorithm 1.

use gtt_engine::{EbInfo, Payload, SchedulingFunction, SfContext};
use gtt_mac::{
    Cell, CellClass, CellOptions, ChannelOffset, SlotOffset, Slotframe, SlotframeHandle, TschMac,
};
use gtt_net::{Dest, NodeId};
use gtt_rpl::RplNode;
use gtt_sixtop::{CellSpec, ReturnCode, SixpBody, SixpCellKind, SixtopEvent};

use crate::channel::ChannelAllocator;
use crate::config::GtTschConfig;
use crate::game::GameInputs;
use crate::layout;
use crate::queue_metric::QueueEwma;

/// The GT-TSCH slotframe handle (single slotframe, §VIII).
const SF_HANDLE: SlotframeHandle = SlotframeHandle::new(0);

/// Hash-based channel pick for the `hash_channels` ablation: mimics the
/// §III strawman where schedulers derive channels from node addresses.
fn hash_channel(node: NodeId, n_offsets: u8, fbcast: u8) -> u8 {
    let h = ((node.raw() as u32).wrapping_mul(2654435761) >> 16) as u8;
    let usable = n_offsets - 1; // everything except f_bcast
    let pick = h % usable;
    if pick >= fbcast {
        pick + 1
    } else {
        pick
    }
}

/// The paper's scheduling function. See the [module docs](self).
pub struct GtTschSf {
    cfg: GtTschConfig,
    /// `f_{i,p_i}`: channel offset towards the parent (from its EBs).
    f_to_parent: Option<u8>,
    /// `f_{i,cs_i}`: channel offset my children transmit to me on.
    f_my_children: Option<u8>,
    /// Channels granted to children for *their* children (Algorithm 1).
    allocator: ChannelAllocator,
    /// Channel advertisements heard in EBs, per neighbor.
    eb_channels: std::collections::BTreeMap<NodeId, u8>,
    ask_channel_pending: bool,
    ask_channel_done: bool,
    sixp_cells_pending: bool,
    sixp_cells_done: bool,
    queue_metric: QueueEwma,
    /// `l_tx_{cs_i}` (eq. 1): the latest number of Tx cells each child
    /// *requested* — demanded capacity propagates up the tree even when a
    /// request could not be granted yet.
    child_demand: std::collections::BTreeMap<NodeId, u16>,
    /// Fresh `l_rx` advertisements heard in neighbors' EBs (the DIO
    /// option is authoritative but Trickle-paced; EBs refresh it at 2 s).
    eb_rx_free: std::collections::BTreeMap<NodeId, u16>,
    /// Periods in a row the node has observed surplus Tx cells; DELETE
    /// fires only after a persistent streak so that a momentary lull does
    /// not trigger an allocate/release oscillation.
    excess_streak: u8,
    /// Do not re-send a demand-signalling ADD (towards a parent that
    /// advertised zero capacity) before this instant.
    demand_signal_backoff: Option<gtt_sim::SimTime>,
}

impl GtTschSf {
    /// Creates the SF with `cfg` and `n_offsets` channel offsets
    /// (= hopping-sequence length).
    ///
    /// # Panics
    ///
    /// Panics if `cfg` is invalid.
    pub fn new(cfg: GtTschConfig, n_offsets: u8) -> Self {
        cfg.validate();
        let allocator = ChannelAllocator::new(n_offsets, cfg.fbcast);
        GtTschSf {
            allocator,
            queue_metric: QueueEwma::new(cfg.zeta),
            cfg,
            f_to_parent: None,
            f_my_children: None,
            eb_channels: std::collections::BTreeMap::new(),
            ask_channel_pending: false,
            ask_channel_done: false,
            sixp_cells_pending: false,
            sixp_cells_done: false,
            child_demand: std::collections::BTreeMap::new(),
            eb_rx_free: std::collections::BTreeMap::new(),
            excess_streak: 0,
            demand_signal_backoff: None,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &GtTschConfig {
        &self.cfg
    }

    /// The channel my children use towards me, once allocated.
    pub fn children_channel(&self) -> Option<u8> {
        self.f_my_children
    }

    /// The channel I use towards my parent, once learned.
    pub fn parent_channel(&self) -> Option<u8> {
        self.f_to_parent
    }

    // ----- schedule accounting helpers -------------------------------

    fn frame<'a>(&self, mac: &'a TschMac<Payload>) -> &'a Slotframe {
        mac.schedule()
            .frame(SF_HANDLE)
            .expect("GT-TSCH slotframe installed at init")
    }

    fn data_tx_count(&self, mac: &TschMac<Payload>) -> u16 {
        self.frame(mac)
            .cells()
            .iter()
            .filter(|c| c.class == CellClass::Data && c.options.tx)
            .count() as u16
    }

    fn data_rx_count(&self, mac: &TschMac<Payload>) -> u16 {
        self.frame(mac)
            .cells()
            .iter()
            .filter(|c| c.class == CellClass::Data && c.options.rx && !c.options.tx)
            .count() as u16
    }

    /// `l_g`: Tx timeslots needed per slotframe for local generation.
    fn l_g(&self, ctx: &SfContext<'_>) -> u16 {
        if ctx.app_rate_ppm <= 0.0 {
            return 0;
        }
        let slotframe_secs =
            ctx.mac.config().slot_duration.as_secs_f64() * self.cfg.slotframe_len as f64;
        (ctx.app_rate_ppm * slotframe_secs / 60.0).ceil() as u16
    }

    /// The Rx capacity this node can still grant (drives both the DIO
    /// `l_rx` option and the grant limit): §V rule 1 keeps Tx strictly
    /// above Rx on forwarders; roots are bounded by free slots only.
    fn rx_capacity(&self, mac: &TschMac<Payload>, rpl: &RplNode) -> u16 {
        let free = layout::free_slots(self.frame(mac)).len() as u16;
        let cap = free.min(self.cfg.rx_advertise_cap);
        if rpl.is_root() {
            cap
        } else {
            let tx = self.data_tx_count(mac) as i32;
            let rx = self.data_rx_count(mac) as i32;
            (tx - 1 - rx).clamp(0, cap as i32) as u16
        }
    }

    fn install_cell(&self, mac: &mut TschMac<Payload>, cell: Cell) {
        let frame = mac
            .schedule_mut()
            .frame_mut(SF_HANDLE)
            .expect("GT-TSCH slotframe installed at init");
        // Idempotent: 6P retries may re-deliver a grant.
        if frame.cells().contains(&cell) {
            return;
        }
        // One radio, one action: the incoming cell owns its slot, so any
        // other cell there loses — a stale grant from a lost response, a
        // shared-slot reinstall after a parent switch, or a concurrent
        // transaction whose candidate list predated this install. (An
        // eviction matching only on class used to let a Data grant
        // coexist with a SixP cell in the same slot, double-booking the
        // radio.)
        frame.remove_where(|c| c.slot == cell.slot);
        frame.add(cell);
    }

    fn remove_cells(&self, mac: &mut TschMac<Payload>, pred: impl Fn(&Cell) -> bool) -> usize {
        mac.schedule_mut()
            .frame_mut(SF_HANDLE)
            .expect("GT-TSCH slotframe installed at init")
            .remove_where(pred)
    }

    // ----- join-time negotiation --------------------------------------

    /// The shared-slot offsets this node uses *towards its parent*
    /// (paper §IV rule 4). A node is simultaneously a child (contending
    /// towards its parent) and a parent (listening for its children), but
    /// one radio does one thing per slot — the global shared-slot list is
    /// therefore split by hop-depth parity: a node at depth `d` transmits
    /// to its parent in slots whose index parity is `(d+1) mod 2` and
    /// listens for its depth-`d+1` children in the complementary ones,
    /// which is exactly where those children transmit.
    fn shared_slots_towards_parent(&self, depth: u16) -> Vec<u16> {
        layout::shared_offsets(
            self.cfg.slotframe_len,
            self.cfg.broadcast_slots,
            self.cfg.shared_slots,
        )
        .into_iter()
        .enumerate()
        .filter(|(i, _)| (*i as u16) % 2 == depth % 2)
        .map(|(_, s)| s)
        .collect()
    }

    fn shared_slots_for_children(&self, depth: u16) -> Vec<u16> {
        layout::shared_offsets(
            self.cfg.slotframe_len,
            self.cfg.broadcast_slots,
            self.cfg.shared_slots,
        )
        .into_iter()
        .enumerate()
        .filter(|(i, _)| (*i as u16) % 2 == (depth + 1) % 2)
        .map(|(_, s)| s)
        .collect()
    }

    /// Re-reads the parent's EB channel and (re)installs the shared
    /// timeslots towards it (§IV rule 4).
    fn adopt_parent_channel(&mut self, ctx: &mut SfContext<'_>) {
        let Some(parent) = ctx.rpl.parent() else {
            return;
        };
        let ch = if self.cfg.hash_channels {
            hash_channel(parent, ctx.mac.hopping().len() as u8, self.cfg.fbcast)
        } else {
            let Some(&ch) = self.eb_channels.get(&parent) else {
                return;
            };
            ch
        };
        if self.f_to_parent == Some(ch) {
            return;
        }
        self.f_to_parent = Some(ch);
        // Cells negotiated on an old channel are void.
        self.remove_cells(ctx.mac, |c| {
            c.peer == Dest::Unicast(parent)
                && matches!(
                    c.class,
                    CellClass::Data | CellClass::SixP | CellClass::Shared
                )
                && c.channel_offset.raw() != ch
        });
        // Shared Tx slots toward the parent (own-parity half).
        let depth = ctx.rpl.rank().approx_hops();
        for slot in self.shared_slots_towards_parent(depth) {
            self.install_cell(
                ctx.mac,
                Cell::new(
                    SlotOffset::new(slot),
                    ChannelOffset::new(ch),
                    CellOptions {
                        tx: true,
                        rx: false,
                        shared: true,
                    },
                    Dest::Unicast(parent),
                    CellClass::Shared,
                ),
            );
        }
        // Depth may have changed: refresh the children-facing half too.
        self.install_children_shared_rx(ctx);
    }

    /// Installs the shared Rx slots on which this node's children contend
    /// (once `f_{i,cs_i}` is known).
    fn install_children_shared_rx(&mut self, ctx: &mut SfContext<'_>) {
        let Some(ch) = self.f_my_children else {
            return;
        };
        // Remove children-facing shared cells on any previous channel.
        self.remove_cells(ctx.mac, |c| {
            c.class == CellClass::Shared
                && c.options.rx
                && !c.options.tx
                && c.channel_offset.raw() != ch
        });
        let depth = ctx.rpl.rank().approx_hops();
        let depth = if ctx.rpl.is_root() { 0 } else { depth };
        for slot in self.shared_slots_for_children(depth) {
            self.install_cell(
                ctx.mac,
                Cell::new(
                    SlotOffset::new(slot),
                    ChannelOffset::new(ch),
                    CellOptions {
                        tx: false,
                        rx: true,
                        shared: true,
                    },
                    Dest::Broadcast, // any child
                    CellClass::Shared,
                ),
            );
        }
    }

    fn request_ask_channel(&mut self, ctx: &mut SfContext<'_>) {
        if self.ask_channel_done || self.ask_channel_pending {
            return;
        }
        let Some(parent) = ctx.rpl.parent() else {
            return;
        };
        if let Some(msg) = ctx
            .sixtop
            .start_request(parent, SixpBody::AskChannelRequest, ctx.now)
        {
            ctx.send_sixp(parent, msg);
            self.ask_channel_pending = true;
        }
    }

    fn request_sixp_cells(&mut self, ctx: &mut SfContext<'_>) {
        if self.sixp_cells_done || self.sixp_cells_pending {
            return;
        }
        let (Some(parent), Some(ch)) = (ctx.rpl.parent(), self.f_to_parent) else {
            return;
        };
        let salt = ctx.mac.id().raw() as u64;
        let candidates: Vec<CellSpec> = layout::candidate_tx_slots(self.frame(ctx.mac), 10, salt)
            .into_iter()
            .map(|slot| CellSpec::new(slot, ch))
            .collect();
        if candidates.len() < 2 {
            return;
        }
        if let Some(msg) = ctx.sixtop.start_request(
            parent,
            SixpBody::AddRequest {
                kind: SixpCellKind::SixP,
                num_cells: 2,
                cells: candidates,
            },
            ctx.now,
        ) {
            ctx.send_sixp(parent, msg);
            self.sixp_cells_pending = true;
        }
    }

    // ----- §VI load balancing ----------------------------------------

    fn load_balance(&mut self, ctx: &mut SfContext<'_>) {
        let Some(parent) = ctx.rpl.parent() else {
            return;
        };
        let Some(ch) = self.f_to_parent else {
            return;
        };
        if ctx.sixtop.is_busy_with(parent) {
            return;
        }

        let l_g = self.l_g(ctx);
        // eq. 1's l_tx_cs: what children requested (≥ what was granted),
        // so demand cascades root-ward before grants do.
        let l_rx_granted = self.data_rx_count(ctx.mac);
        let l_cs: u16 = self.child_demand.values().sum();
        let l_in = l_cs.max(l_rx_granted);
        let l_tx = self.data_tx_count(ctx.mac);
        let demand = l_g + l_in;
        // eq. 1: the minimum number of *additional* Tx cells needed.
        let deficit = demand as i32 - l_tx as i32;

        // §VI: a node may request *more* than the bare minimum — here,
        // when the smoothed queue shows sustained backlog, it plays the
        // game even at zero deficit (the full-queue case drives eq. 15
        // towards the parent's bound).
        let queue_pressure = self.queue_metric.value() > 1.0;

        if deficit > 0 || queue_pressure {
            self.excess_streak = 0;
            let l_rx_parent = self
                .eb_rx_free
                .get(&parent)
                .copied()
                .unwrap_or(0)
                .max(ctx.rpl.neighbor_rx_free(parent).unwrap_or(0));
            let Some(rank_weight) = ctx.rpl.rank().game_weight() else {
                return;
            };
            let q_max = ctx.mac.data_queue_capacity() as f64;
            let want = if l_rx_parent == 0 {
                // The parent has nothing to give *yet*. Send the bare
                // eq. 1 minimum anyway: the request is the demand signal
                // (`l_tx_cs`) the parent needs to chase capacity from its
                // own parent. It answers RC_ERR_NOCELLS until then; back
                // off so the signal does not monopolize the 6P cells.
                if let Some(until) = self.demand_signal_backoff {
                    if ctx.now < until {
                        return;
                    }
                }
                self.demand_signal_backoff = Some(ctx.now + gtt_sim::SimDuration::from_secs(8));
                deficit.max(1) as u16
            } else {
                let inputs = GameInputs {
                    rank_weight,
                    etx: ctx.mac.etx(parent).max(1.0),
                    queue_avg: self.queue_metric.value().min(q_max),
                    queue_max: q_max,
                    l_tx_min: deficit.max(1) as u16,
                    l_rx_parent,
                };
                inputs.best_response(&self.cfg.weights).cells.max(1)
            };
            let salt = ctx.mac.id().raw() as u64 + self.data_tx_count(ctx.mac) as u64;
            let candidates: Vec<CellSpec> =
                layout::candidate_tx_slots(self.frame(ctx.mac), want as usize * 2 + 6, salt)
                    .into_iter()
                    .map(|slot| CellSpec::new(slot, ch))
                    .collect();
            if candidates.is_empty() {
                return;
            }
            if let Some(msg) = ctx.sixtop.start_request(
                parent,
                SixpBody::AddRequest {
                    kind: SixpCellKind::Data,
                    num_cells: want,
                    cells: candidates,
                },
                ctx.now,
            ) {
                ctx.send_sixp(parent, msg);
            }
        } else if (-deficit) > self.cfg.delete_slack as i32 {
            // Light load: release cells beyond demand + slack (§IV rule
            // 3) — but only after the surplus persists for three periods,
            // so a queue that was just drained by a pressure-grant does
            // not bounce between ADD and DELETE.
            self.excess_streak = self.excess_streak.saturating_add(1);
            if self.excess_streak < 3 {
                return;
            }
            self.excess_streak = 0;
            let excess = ((-deficit) - self.cfg.delete_slack as i32) as usize;
            let mut tx_cells: Vec<Cell> = self
                .frame(ctx.mac)
                .cells()
                .iter()
                .filter(|c| {
                    c.class == CellClass::Data && c.options.tx && c.peer == Dest::Unicast(parent)
                })
                .copied()
                .collect();
            tx_cells.sort_by_key(|c| std::cmp::Reverse(c.slot));
            let victims: Vec<CellSpec> = tx_cells
                .iter()
                .take(excess)
                .map(|c| CellSpec::new(c.slot.raw(), c.channel_offset.raw()))
                .collect();
            if victims.is_empty() {
                return;
            }
            if let Some(msg) = ctx.sixtop.start_request(
                parent,
                SixpBody::DeleteRequest {
                    kind: SixpCellKind::Data,
                    cells: victims,
                },
                ctx.now,
            ) {
                ctx.send_sixp(parent, msg);
            }
        }
    }

    // ----- responder side ---------------------------------------------

    fn answer_add(
        &mut self,
        ctx: &mut SfContext<'_>,
        from: NodeId,
        kind: SixpCellKind,
        num_cells: u16,
        candidates: &[CellSpec],
    ) -> SixpBody {
        if kind == SixpCellKind::Data {
            // eq. 1: remember the child's demand even if we cannot grant
            // it yet — our own load balancer chases capacity for it.
            self.child_demand.insert(from, num_cells);
        }
        let want = match kind {
            SixpCellKind::SixP => 2u16,
            // Idempotent retries must be able to re-grant even at zero
            // remaining capacity; that case is handled per-cell below.
            SixpCellKind::Data => num_cells.min(self.rx_capacity(ctx.mac, ctx.rpl)),
        };
        let mut granted: Vec<CellSpec> = Vec::new();
        for spec in candidates {
            if granted.len() as u16 >= want.max(if kind == SixpCellKind::SixP { 2 } else { 0 }) {
                break;
            }
            if granted.len() as u16 >= want && kind == SixpCellKind::Data {
                break;
            }
            let slot = SlotOffset::new(spec.slot);
            let existing = self.frame(ctx.mac).cells_at(slot).next().copied();
            match existing {
                Some(c) if c.peer == Dest::Unicast(from) => {
                    // Re-grant of a cell we already installed (retry).
                    granted.push(*spec);
                    continue;
                }
                Some(_) => continue, // occupied by someone/something else
                None => {}
            }
            if kind == SixpCellKind::Data
                && !layout::rx_placement_ok(self.frame(ctx.mac), spec.slot)
            {
                continue;
            }
            granted.push(*spec);
        }
        let needed = match kind {
            SixpCellKind::SixP => 2,
            SixpCellKind::Data => 1,
        };
        if (granted.len() as u16) < needed {
            return SixpBody::AddResponse {
                code: ReturnCode::ErrNoCells,
                cells: vec![],
            };
        }
        // Install the responder-side cells.
        match kind {
            SixpCellKind::Data => {
                for spec in &granted {
                    self.install_cell(
                        ctx.mac,
                        Cell::data_rx(
                            SlotOffset::new(spec.slot),
                            ChannelOffset::new(spec.channel_offset),
                            from,
                        ),
                    );
                }
            }
            SixpCellKind::SixP => {
                granted.truncate(2);
                // Convention: first cell child→parent (our Rx), second
                // parent→child (our Tx).
                let c0 = granted[0];
                let c1 = granted[1];
                self.install_cell(
                    ctx.mac,
                    Cell::new(
                        SlotOffset::new(c0.slot),
                        ChannelOffset::new(c0.channel_offset),
                        CellOptions::RX,
                        Dest::Unicast(from),
                        CellClass::SixP,
                    ),
                );
                self.install_cell(
                    ctx.mac,
                    Cell::new(
                        SlotOffset::new(c1.slot),
                        ChannelOffset::new(c1.channel_offset),
                        CellOptions::TX,
                        Dest::Unicast(from),
                        CellClass::SixP,
                    ),
                );
            }
        }
        SixpBody::AddResponse {
            code: ReturnCode::Success,
            cells: granted,
        }
    }

    fn answer_delete(
        &mut self,
        ctx: &mut SfContext<'_>,
        from: NodeId,
        cells: &[CellSpec],
    ) -> SixpBody {
        // The child is shedding cells: shrink its recorded demand.
        if let Some(d) = self.child_demand.get_mut(&from) {
            *d = d.saturating_sub(cells.len() as u16);
        }
        for spec in cells {
            self.remove_cells(ctx.mac, |c| {
                c.slot.raw() == spec.slot && c.peer == Dest::Unicast(from)
            });
        }
        SixpBody::DeleteResponse {
            code: ReturnCode::Success,
            cells: cells.to_vec(),
        }
    }

    fn answer_ask_channel(&mut self, ctx: &mut SfContext<'_>, from: NodeId) -> SixpBody {
        match self
            .allocator
            .allocate(from, self.f_to_parent, self.f_my_children)
        {
            Some(ch) => SixpBody::AskChannelResponse {
                code: ReturnCode::Success,
                channel_offset: ch,
            },
            None => {
                let _ = ctx;
                SixpBody::AskChannelResponse {
                    code: ReturnCode::Err,
                    channel_offset: 0,
                }
            }
        }
    }

    // ----- requester-side completions ----------------------------------

    fn complete_add(
        &mut self,
        ctx: &mut SfContext<'_>,
        peer: NodeId,
        kind: SixpCellKind,
        cells: &[CellSpec],
    ) {
        match kind {
            SixpCellKind::Data => {
                for spec in cells {
                    self.install_cell(
                        ctx.mac,
                        Cell::data_tx(
                            SlotOffset::new(spec.slot),
                            ChannelOffset::new(spec.channel_offset),
                            peer,
                        ),
                    );
                }
            }
            SixpCellKind::SixP => {
                if cells.len() >= 2 {
                    self.install_cell(
                        ctx.mac,
                        Cell::new(
                            SlotOffset::new(cells[0].slot),
                            ChannelOffset::new(cells[0].channel_offset),
                            CellOptions::TX,
                            Dest::Unicast(peer),
                            CellClass::SixP,
                        ),
                    );
                    self.install_cell(
                        ctx.mac,
                        Cell::new(
                            SlotOffset::new(cells[1].slot),
                            ChannelOffset::new(cells[1].channel_offset),
                            CellOptions::RX,
                            Dest::Unicast(peer),
                            CellClass::SixP,
                        ),
                    );
                }
                self.sixp_cells_pending = false;
                self.sixp_cells_done = true;
            }
        }
    }
}

impl SchedulingFunction for GtTschSf {
    fn name(&self) -> &'static str {
        "gt-tsch"
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn init(&mut self, ctx: &mut SfContext<'_>) {
        let mut sf = Slotframe::new(self.cfg.slotframe_len);
        for slot in layout::broadcast_offsets(self.cfg.slotframe_len, self.cfg.broadcast_slots) {
            sf.add(Cell::broadcast(
                SlotOffset::new(slot),
                ChannelOffset::new(self.cfg.fbcast),
            ));
        }
        ctx.mac.schedule_mut().add_slotframe(SF_HANDLE, sf);

        let n = ctx.mac.hopping().len() as u8;
        if self.cfg.hash_channels {
            // Ablation: every node derives its children-facing channel
            // from its own address; no coordination at all.
            self.f_my_children = Some(hash_channel(ctx.mac.id(), n, self.cfg.fbcast));
            self.ask_channel_done = true;
            if ctx.rpl.is_root() {
                self.install_children_shared_rx(ctx);
            }
            return;
        }
        if ctx.rpl.is_root() {
            // Algorithm 1 line 2: the root picks a random children
            // channel from F − {f_bcast}.
            let mut ch = ctx.rng.gen_range_u32(0, n as u32) as u8;
            if ch == self.cfg.fbcast {
                ch = (ch + 1) % n;
            }
            self.f_my_children = Some(ch);
            self.ask_channel_done = true;
            self.install_children_shared_rx(ctx);
        }
    }

    fn periodic(&mut self, ctx: &mut SfContext<'_>) {
        self.queue_metric.update(ctx.mac.data_queue_len() as f64);
        if ctx.rpl.is_root() {
            return;
        }
        if ctx.rpl.parent().is_none() {
            return;
        }
        self.adopt_parent_channel(ctx);
        if self.f_to_parent.is_none() {
            return; // wait for the parent's EB
        }
        self.request_sixp_cells(ctx);
        self.request_ask_channel(ctx);
        self.load_balance(ctx);
    }

    fn on_parent_changed(&mut self, ctx: &mut SfContext<'_>, old: Option<NodeId>, new: NodeId) {
        if let Some(old_parent) = old {
            self.remove_cells(ctx.mac, |c| {
                c.peer == Dest::Unicast(old_parent)
                    && matches!(
                        c.class,
                        CellClass::Data | CellClass::SixP | CellClass::Shared
                    )
            });
            // Best-effort CLEAR so the old parent releases its side.
            if let Some(msg) = ctx
                .sixtop
                .start_request(old_parent, SixpBody::ClearRequest, ctx.now)
            {
                ctx.send_sixp(old_parent, msg);
            }
        }
        self.f_to_parent = None;
        self.sixp_cells_done = false;
        self.sixp_cells_pending = false;
        // Our children-facing channel was allocated by the old parent;
        // re-validate it with the new one (Algorithm 1 keeps three-hop
        // uniqueness only along current paths). Hash mode has no
        // coordination to redo.
        if !self.cfg.hash_channels {
            self.ask_channel_done = false;
            self.ask_channel_pending = false;
        }
        let _ = new;
        self.adopt_parent_channel(ctx);
    }

    fn on_eb(&mut self, ctx: &mut SfContext<'_>, src: NodeId, eb: &EbInfo) {
        if ctx.rpl.parent() == Some(src) && eb.rx_free > 0 {
            self.demand_signal_backoff = None;
        }
        self.eb_rx_free.insert(src, eb.rx_free);
        if let Some(ch) = eb.rx_channel {
            self.eb_channels.insert(src, ch);
            if ctx.rpl.parent() == Some(src) {
                self.adopt_parent_channel(ctx);
            }
        }
    }

    fn on_dao(&mut self, ctx: &mut SfContext<'_>, child: NodeId, no_path: bool) {
        if no_path {
            self.remove_cells(ctx.mac, |c| c.peer == Dest::Unicast(child));
            self.allocator.release(child);
            self.child_demand.remove(&child);
        }
    }

    fn on_sixtop_event(&mut self, ctx: &mut SfContext<'_>, event: &SixtopEvent) {
        match event {
            SixtopEvent::Request { from, seqnum, body } => {
                let response = match body {
                    SixpBody::AddRequest {
                        kind,
                        num_cells,
                        cells,
                    } => self.answer_add(ctx, *from, *kind, *num_cells, cells),
                    SixpBody::DeleteRequest { cells, .. } => self.answer_delete(ctx, *from, cells),
                    SixpBody::AskChannelRequest => self.answer_ask_channel(ctx, *from),
                    SixpBody::ClearRequest => {
                        self.remove_cells(ctx.mac, |c| {
                            c.peer == Dest::Unicast(*from)
                                && matches!(
                                    c.class,
                                    CellClass::Data | CellClass::SixP | CellClass::Shared
                                )
                        });
                        self.allocator.release(*from);
                        self.child_demand.remove(from);
                        SixpBody::ClearResponse {
                            code: ReturnCode::Success,
                        }
                    }
                    _ => SixpBody::ClearResponse {
                        code: ReturnCode::Err,
                    },
                };
                let msg = ctx.sixtop.respond(*seqnum, response);
                ctx.send_sixp(*from, msg);
            }
            SixtopEvent::Completed {
                peer,
                request,
                response,
            } => match (request, response) {
                (SixpBody::AddRequest { kind, .. }, SixpBody::AddResponse { cells, .. }) => {
                    self.complete_add(ctx, *peer, *kind, cells)
                }
                (SixpBody::DeleteRequest { .. }, SixpBody::DeleteResponse { cells, .. }) => {
                    for spec in cells {
                        self.remove_cells(ctx.mac, |c| {
                            c.slot.raw() == spec.slot
                                && c.peer == Dest::Unicast(*peer)
                                && c.class == CellClass::Data
                        });
                    }
                }
                (
                    SixpBody::AskChannelRequest,
                    SixpBody::AskChannelResponse { channel_offset, .. },
                ) => {
                    self.ask_channel_pending = false;
                    self.ask_channel_done = true;
                    self.f_my_children = Some(*channel_offset);
                    self.install_children_shared_rx(ctx);
                }
                _ => {}
            },
            SixtopEvent::Failed { request, .. } => match request {
                SixpBody::AskChannelRequest => {
                    self.ask_channel_pending = false;
                }
                SixpBody::AddRequest {
                    kind: SixpCellKind::SixP,
                    ..
                } => {
                    self.sixp_cells_pending = false;
                }
                _ => {}
            },
        }
    }

    fn dio_rx_free(&self, mac: &TschMac<Payload>, rpl: &RplNode) -> u16 {
        self.rx_capacity(mac, rpl)
    }

    fn eb_info(&self, mac: &TschMac<Payload>, rpl: &RplNode) -> EbInfo {
        EbInfo {
            rx_channel: self.f_my_children,
            rx_free: self.rx_capacity(mac, rpl),
        }
    }

    fn debug_summary(&self) -> String {
        format!(
            "f_par={:?} f_cs={:?} ask(done={},pend={}) 6pcells(done={},pend={}) demand={:?} eb_ch={:?} eb_rx={:?}",
            self.f_to_parent,
            self.f_my_children,
            self.ask_channel_done,
            self.ask_channel_pending,
            self.sixp_cells_done,
            self.sixp_cells_pending,
            self.child_demand,
            self.eb_channels,
            self.eb_rx_free,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gtt_mac::{HoppingSequence, MacConfig};
    use gtt_rpl::{Dio, Rank, RplConfig};
    use gtt_sim::{Pcg32, SimTime};
    use gtt_sixtop::{SixtopConfig, SixtopLayer};

    /// A hand-driven harness around one SF instance.
    struct Harness {
        sf: GtTschSf,
        mac: TschMac<Payload>,
        rpl: RplNode,
        sixtop: SixtopLayer,
        rng: Pcg32,
        out: Vec<gtt_engine::OutgoingControl>,
        rate: f64,
    }

    impl Harness {
        fn new_root(id: u16) -> Self {
            Self::build(id, true)
        }

        fn new_node(id: u16) -> Self {
            Self::build(id, false)
        }

        fn build(id: u16, root: bool) -> Self {
            let id = NodeId::new(id);
            let mut h = Harness {
                sf: GtTschSf::new(GtTschConfig::paper_default(), 8),
                mac: TschMac::new(
                    id,
                    MacConfig::paper_default(),
                    HoppingSequence::paper_default(),
                    Pcg32::new(id.raw() as u64 + 100),
                ),
                rpl: if root {
                    RplNode::new_root(id, RplConfig::default(), SimTime::ZERO)
                } else {
                    RplNode::new(id, RplConfig::default())
                },
                sixtop: SixtopLayer::new(id, SixtopConfig::default()),
                rng: Pcg32::new(id.raw() as u64),
                out: Vec::new(),
                rate: 0.0,
            };
            h.with(|sf, ctx| sf.init(ctx));
            h
        }

        fn with(&mut self, f: impl FnOnce(&mut GtTschSf, &mut SfContext<'_>)) {
            let mut ctx = SfContext {
                mac: &mut self.mac,
                rpl: &self.rpl,
                sixtop: &mut self.sixtop,
                rng: &mut self.rng,
                now: SimTime::from_secs(10),
                app_rate_ppm: self.rate,
                out: &mut self.out,
            };
            f(&mut self.sf, &mut ctx);
        }

        fn join(&mut self, parent: u16, parent_channel: u8) {
            let p = NodeId::new(parent);
            self.rpl.handle_dio(
                p,
                Dio::new(NodeId::new(0), 1, Rank::ROOT).with_rx_free(6),
                1.0,
                SimTime::from_secs(1),
            );
            let eb = EbInfo::with_rx_channel(parent_channel);
            self.with(|sf, ctx| sf.on_eb(ctx, p, &eb));
        }

        /// Completes this node's most recent outgoing 6P request by
        /// synthesizing the peer's `response` (protocol-honest: it flows
        /// back through the 6P layer so the transaction slot frees up).
        fn pump_response(&mut self, response: SixpBody) {
            let (peer, seq) = self
                .out
                .iter()
                .rev()
                .find_map(|m| match (&m.to, &m.payload) {
                    (Dest::Unicast(p), Payload::SixP(msg)) if msg.body.is_request() => {
                        Some((*p, msg.seqnum))
                    }
                    _ => None,
                })
                .expect("an outgoing 6P request to answer");
            let msg = gtt_sixtop::SixpMessage::new(seq, response);
            if let Some(ev) = self.sixtop.handle_message(peer, msg) {
                self.with(|sf, ctx| sf.on_sixtop_event(ctx, &ev));
            }
        }

        /// Drives the join-time negotiation to completion: 6P cells then
        /// ASK-CHANNEL (granting `children_channel`).
        fn settle_join(&mut self, children_channel: u8) {
            self.with(|sf, ctx| sf.periodic(ctx));
            self.pump_response(SixpBody::AddResponse {
                code: ReturnCode::Success,
                cells: vec![CellSpec::new(9, 5), CellSpec::new(10, 5)],
            });
            self.with(|sf, ctx| sf.periodic(ctx));
            self.pump_response(SixpBody::AskChannelResponse {
                code: ReturnCode::Success,
                channel_offset: children_channel,
            });
        }

        fn cells(&self, class: CellClass) -> Vec<Cell> {
            self.mac
                .schedule()
                .frame(SF_HANDLE)
                .unwrap()
                .cells()
                .iter()
                .filter(|c| c.class == class)
                .copied()
                .collect()
        }
    }

    #[test]
    fn init_installs_uniform_broadcast_cells() {
        let h = Harness::new_node(5);
        let bcast = h.cells(CellClass::Broadcast);
        assert_eq!(bcast.len(), 4);
        let slots: Vec<u16> = bcast.iter().map(|c| c.slot.raw()).collect();
        assert_eq!(slots, vec![0, 8, 16, 24]);
        assert!(bcast.iter().all(|c| c.channel_offset.raw() == 0));
    }

    #[test]
    fn root_picks_non_broadcast_children_channel() {
        let h = Harness::new_root(0);
        let ch = h.sf.children_channel().expect("root allocates at init");
        assert_ne!(ch, 0, "children channel must differ from f_bcast");
        // Shared Rx cells installed on that channel — the odd-parity half
        // of the 3 shared slots (where depth-1 children transmit).
        let shared = h.cells(CellClass::Shared);
        assert_eq!(shared.len(), 1);
        assert_eq!(shared[0].slot.raw(), 9);
        assert!(shared.iter().all(|c| c.channel_offset.raw() == ch));
        assert!(shared.iter().all(|c| c.options.rx && !c.options.tx));
    }

    #[test]
    fn child_installs_shared_tx_on_parent_channel() {
        let mut h = Harness::new_node(2);
        h.join(0, 5);
        assert_eq!(h.sf.parent_channel(), Some(5));
        // Depth-1 child: transmits to the parent in the odd-parity shared
        // slot (9) — exactly where the root listens.
        let shared = h.cells(CellClass::Shared);
        assert_eq!(shared.len(), 1, "{shared:?}");
        assert_eq!(shared[0].slot.raw(), 9);
        assert!(shared.iter().all(|c| c.channel_offset.raw() == 5));
        assert!(shared.iter().all(|c| c.options.tx && c.options.shared));
        assert!(shared
            .iter()
            .all(|c| c.peer == Dest::Unicast(NodeId::new(0))));
    }

    #[test]
    fn periodic_negotiates_sixp_cells_then_channel() {
        // RFC 8480 allows one outstanding transaction per neighbor pair,
        // so the join-time negotiation serializes: ADD(SixP) first, then
        // ASK-CHANNEL after it completes.
        let mut h = Harness::new_node(2);
        h.join(0, 5);
        h.with(|sf, ctx| sf.periodic(ctx));
        assert_eq!(h.out.len(), 1, "messages: {:?}", h.out);
        assert!(matches!(
            &h.out[0].payload,
            Payload::SixP(m) if matches!(m.body, SixpBody::AddRequest { kind: SixpCellKind::SixP, .. })
        ));
        h.pump_response(SixpBody::AddResponse {
            code: ReturnCode::Success,
            cells: vec![CellSpec::new(9, 5), CellSpec::new(10, 5)],
        });
        // Dedicated 6P cells installed: one Tx, one Rx.
        let sixp = h.cells(CellClass::SixP);
        assert_eq!(sixp.len(), 2);
        assert!(sixp.iter().any(|c| c.options.tx) && sixp.iter().any(|c| c.options.rx));

        h.with(|sf, ctx| sf.periodic(ctx));
        assert!(matches!(
            &h.out.last().unwrap().payload,
            Payload::SixP(m) if matches!(m.body, SixpBody::AskChannelRequest)
        ));
        h.pump_response(SixpBody::AskChannelResponse {
            code: ReturnCode::Success,
            channel_offset: 3,
        });
        assert_eq!(h.sf.children_channel(), Some(3));
    }

    #[test]
    fn parent_answers_ask_channel_with_algorithm_1() {
        let mut h = Harness::new_root(0);
        let own = h.sf.children_channel().unwrap();
        let event = SixtopEvent::Request {
            from: NodeId::new(3),
            seqnum: 0,
            body: SixpBody::AskChannelRequest,
        };
        h.with(|sf, ctx| sf.on_sixtop_event(ctx, &event));
        assert_eq!(h.out.len(), 1);
        let Payload::SixP(msg) = &h.out[0].payload else {
            panic!("expected 6P response");
        };
        let SixpBody::AskChannelResponse {
            code,
            channel_offset,
        } = msg.body
        else {
            panic!("expected ASK-CHANNEL response, got {}", msg);
        };
        assert!(code.is_success());
        assert_ne!(channel_offset, 0, "not f_bcast");
        assert_ne!(channel_offset, own, "not the root's own children channel");
    }

    #[test]
    fn parent_grants_data_cells_and_installs_rx() {
        let mut h = Harness::new_root(0);
        let event = SixtopEvent::Request {
            from: NodeId::new(3),
            seqnum: 0,
            body: SixpBody::AddRequest {
                kind: SixpCellKind::Data,
                num_cells: 2,
                cells: vec![
                    CellSpec::new(2, 4),
                    CellSpec::new(3, 4),
                    CellSpec::new(5, 4),
                ],
            },
        };
        h.with(|sf, ctx| sf.on_sixtop_event(ctx, &event));
        let rx = h.cells(CellClass::Data);
        assert_eq!(rx.len(), 2, "two Rx cells installed");
        assert!(rx.iter().all(|c| c.options.rx));
        assert!(rx.iter().all(|c| c.peer == Dest::Unicast(NodeId::new(3))));
        let Payload::SixP(msg) = &h.out[0].payload else {
            panic!()
        };
        let SixpBody::AddResponse { code, cells } = &msg.body else {
            panic!("expected ADD response")
        };
        assert!(code.is_success());
        assert_eq!(cells.len(), 2);
    }

    #[test]
    fn grant_is_idempotent_across_retries() {
        let mut h = Harness::new_root(0);
        let body = SixpBody::AddRequest {
            kind: SixpCellKind::Data,
            num_cells: 1,
            cells: vec![CellSpec::new(2, 4)],
        };
        for seq in [0, 0] {
            let event = SixtopEvent::Request {
                from: NodeId::new(3),
                seqnum: seq,
                body: body.clone(),
            };
            h.with(|sf, ctx| sf.on_sixtop_event(ctx, &event));
        }
        assert_eq!(h.cells(CellClass::Data).len(), 1, "no duplicate cells");
    }

    #[test]
    fn child_installs_tx_cells_on_completion() {
        let mut h = Harness::new_node(2);
        h.join(0, 5);
        let event = SixtopEvent::Completed {
            peer: NodeId::new(0),
            request: SixpBody::AddRequest {
                kind: SixpCellKind::Data,
                num_cells: 2,
                cells: vec![],
            },
            response: SixpBody::AddResponse {
                code: ReturnCode::Success,
                cells: vec![CellSpec::new(2, 5), CellSpec::new(5, 5)],
            },
        };
        h.with(|sf, ctx| sf.on_sixtop_event(ctx, &event));
        let data = h.cells(CellClass::Data);
        assert_eq!(data.len(), 2);
        assert!(data.iter().all(|c| c.options.tx));
        assert!(data.iter().all(|c| c.channel_offset.raw() == 5));
    }

    #[test]
    fn ask_channel_completion_installs_children_shared_rx() {
        let mut h = Harness::new_node(2);
        h.join(0, 5);
        let event = SixtopEvent::Completed {
            peer: NodeId::new(0),
            request: SixpBody::AskChannelRequest,
            response: SixpBody::AskChannelResponse {
                code: ReturnCode::Success,
                channel_offset: 3,
            },
        };
        h.with(|sf, ctx| sf.on_sixtop_event(ctx, &event));
        assert_eq!(h.sf.children_channel(), Some(3));
        // A depth-1 node's children transmit in the even-parity shared
        // slots {1, 17}; it must listen there.
        let shared_rx: Vec<Cell> = h
            .cells(CellClass::Shared)
            .into_iter()
            .filter(|c| c.options.rx)
            .collect();
        assert_eq!(shared_rx.len(), 2, "{shared_rx:?}");
        assert!(shared_rx.iter().all(|c| c.channel_offset.raw() == 3));
        let slots: Vec<u16> = shared_rx.iter().map(|c| c.slot.raw()).collect();
        assert_eq!(slots, vec![1, 17]);
    }

    #[test]
    fn dio_rx_free_enforces_tx_above_rx() {
        let mut h = Harness::new_node(2);
        h.join(0, 5);
        // No Tx cells yet: a forwarder must advertise 0.
        assert_eq!(h.sf.dio_rx_free(&h.mac, &h.rpl), 0);
        // Give it three Tx cells: capacity becomes 3 − 1 − 0 = 2.
        h.with(|sf, ctx| {
            for slot in [2, 3, 5] {
                sf.install_cell(
                    ctx.mac,
                    Cell::data_tx(SlotOffset::new(slot), ChannelOffset::new(5), NodeId::new(0)),
                );
            }
        });
        assert_eq!(h.sf.dio_rx_free(&h.mac, &h.rpl), 2);
    }

    #[test]
    fn root_advertises_free_capacity() {
        let h = Harness::new_root(0);
        let adv = h.sf.dio_rx_free(&h.mac, &h.rpl);
        assert!(adv > 0, "root must advertise capacity, got {adv}");
        assert!(adv <= h.sf.config().rx_advertise_cap);
    }

    #[test]
    fn load_balance_requests_game_optimal_cells() {
        let mut h = Harness::new_node(2);
        h.rate = 150.0; // heavy generation: l_g = ceil(150·0.48/60) = 2
        h.join(0, 5);
        h.settle_join(3);
        h.with(|sf, ctx| sf.periodic(ctx));
        let add_data = h.out.iter().find_map(|m| match &m.payload {
            Payload::SixP(msg) => match &msg.body {
                SixpBody::AddRequest {
                    kind: SixpCellKind::Data,
                    num_cells,
                    cells,
                } => Some((*num_cells, cells.len())),
                _ => None,
            },
            _ => None,
        });
        let (num, cand) = add_data.expect("a data ADD must be issued under load");
        assert!(num >= 2, "deficit is 2, requested {num}");
        assert!(num <= 6, "bounded by parent's advertised l_rx");
        assert!(cand >= num as usize, "enough candidates proposed");
    }

    #[test]
    fn light_load_triggers_delete() {
        let mut h = Harness::new_node(2);
        h.rate = 10.0; // l_g = 1
        h.join(0, 5);
        h.settle_join(3);
        // Pretend we once needed 5 cells.
        h.with(|sf, ctx| {
            for slot in [2, 3, 5, 6, 7] {
                sf.install_cell(
                    ctx.mac,
                    Cell::data_tx(SlotOffset::new(slot), ChannelOffset::new(5), NodeId::new(0)),
                );
            }
        });
        // DELETE requires a persistent (3-period) surplus streak.
        h.with(|sf, ctx| sf.periodic(ctx));
        h.with(|sf, ctx| sf.periodic(ctx));
        h.with(|sf, ctx| sf.periodic(ctx));
        let delete = h.out.iter().find_map(|m| match &m.payload {
            Payload::SixP(msg) => match &msg.body {
                SixpBody::DeleteRequest { cells, .. } => Some(cells.len()),
                _ => None,
            },
            _ => None,
        });
        // demand = 1, have 5, slack 1 ⇒ delete 3.
        assert_eq!(delete, Some(3));
    }

    #[test]
    fn parent_change_clears_old_cells() {
        let mut h = Harness::new_node(2);
        // Join through a deep relay (n9, rank 768 ⇒ our rank 1024)…
        h.rpl.handle_dio(
            NodeId::new(9),
            Dio::new(NodeId::new(0), 1, Rank::new(768)).with_rx_free(6),
            1.0,
            SimTime::from_secs(1),
        );
        let eb = EbInfo::with_rx_channel(5);
        h.with(|sf, ctx| sf.on_eb(ctx, NodeId::new(9), &eb));
        h.with(|sf, ctx| {
            sf.install_cell(
                ctx.mac,
                Cell::data_tx(SlotOffset::new(2), ChannelOffset::new(5), NodeId::new(9)),
            );
        });
        assert!(!h.cells(CellClass::Data).is_empty());
        assert!(!h.cells(CellClass::Shared).is_empty());

        // …then the root appears (cost 512, improvement > threshold):
        // RPL switches parents, after which the engine fires the hook.
        h.rpl.handle_dio(
            NodeId::new(0),
            Dio::new(NodeId::new(0), 1, Rank::ROOT).with_rx_free(6),
            1.0,
            SimTime::from_secs(2),
        );
        assert_eq!(h.rpl.parent(), Some(NodeId::new(0)));
        h.with(|sf, ctx| sf.on_parent_changed(ctx, Some(NodeId::new(9)), NodeId::new(0)));

        let data = h.cells(CellClass::Data);
        assert!(data.is_empty(), "old-parent data cells gone: {data:?}");
        assert!(
            h.cells(CellClass::Shared)
                .iter()
                .all(|c| c.peer != Dest::Unicast(NodeId::new(9))),
            "no shared cells towards the old parent"
        );
        // A CLEAR went out to the old parent.
        assert!(h.out.iter().any(|m| matches!(
            &m.payload,
            Payload::SixP(msg) if matches!(msg.body, SixpBody::ClearRequest)
        )));
    }

    #[test]
    fn no_path_dao_releases_child_state() {
        let mut h = Harness::new_root(0);
        // Child 3 asks for a channel and gets cells.
        let ask = SixtopEvent::Request {
            from: NodeId::new(3),
            seqnum: 0,
            body: SixpBody::AskChannelRequest,
        };
        h.with(|sf, ctx| sf.on_sixtop_event(ctx, &ask));
        let add = SixtopEvent::Request {
            from: NodeId::new(3),
            seqnum: 1,
            body: SixpBody::AddRequest {
                kind: SixpCellKind::Data,
                num_cells: 1,
                cells: vec![CellSpec::new(2, 4)],
            },
        };
        h.with(|sf, ctx| sf.on_sixtop_event(ctx, &add));
        assert_eq!(h.cells(CellClass::Data).len(), 1);
        h.with(|sf, ctx| sf.on_dao(ctx, NodeId::new(3), true));
        assert!(h.cells(CellClass::Data).is_empty());
    }
}
