//! # gt-tsch — the game-theoretic distributed TSCH scheduler
//!
//! This crate is the paper's primary contribution, reproduced in full:
//!
//! * [`game`] — the non-cooperative cell-allocation game of §VII:
//!   logarithmic utility weighted by DAG position (eq. 2–3), link-quality
//!   cost over ETX (eq. 4–5), queue cost over an EWMA queue metric
//!   (eq. 6–7), the combined payoff (eq. 8) and the closed-form
//!   KKT/Nash-optimal number of Tx cells (eq. 15). The existence and
//!   uniqueness arguments (Theorems 1–2) are checked numerically in the
//!   test suite.
//! * [`channel`] — Algorithm 1: the collision-free channel-allocation
//!   scheme that keeps each channel unique along three-hop paths
//!   (§III problems 1–4).
//! * [`layout`] — §IV slotframe construction (broadcast/6P/shared/sleep
//!   timeslots) and the §V Unicast-Data placement rules (Tx > Rx, one Tx
//!   between consecutive Rx, fair child interleaving).
//! * [`sf`] — [`GtTschSf`], the scheduling function gluing it all to the
//!   engine: EB channel piggybacking, 6P `ASK-CHANNEL`, ADD/DELETE cell
//!   negotiation and the §VI load balancer.
//!
//! # Example
//!
//! Computing the paper's optimal cell count (eq. 15) directly:
//!
//! ```
//! use gt_tsch::game::{GameInputs, GameWeights};
//!
//! let weights = GameWeights::default(); // α=1, β=0.5, γ=1
//! let inputs = GameInputs {
//!     rank_weight: 1.0,      // first-hop node (eq. 3)
//!     etx: 1.2,              // decent link
//!     queue_avg: 2.0,        // light backlog
//!     queue_max: 8.0,
//!     l_tx_min: 1,           // eq. 1 deficit
//!     l_rx_parent: 6,        // parent's advertised capacity
//! };
//! let l = inputs.best_response(&weights);
//! assert!((1..=6).contains(&l.cells));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod channel;
pub mod config;
pub mod game;
pub mod layout;
pub mod queue_metric;
pub mod sf;

pub use channel::ChannelAllocator;
pub use config::GtTschConfig;
pub use game::{BestResponse, Bound, GameInputs, GameWeights};
pub use queue_metric::QueueEwma;
pub use sf::GtTschSf;
