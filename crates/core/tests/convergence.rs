//! Convergence dynamics of the GT-TSCH scheduling function on live
//! networks: how fast the negotiation pipeline (EB channel → 6P cells →
//! ASK-CHANNEL → data cells) reaches a working schedule, and how the
//! game adapts allocations when conditions change.

use gtt_mac::CellClass;
use gtt_net::NodeId;
use gtt_sim::SimDuration;
use gtt_workload::{Experiment, RunSpec, ScenarioSpec, SchedulerKind};

fn data_tx_cells(net: &gtt_engine::Network, id: u16) -> usize {
    net.node(NodeId::new(id))
        .mac
        .schedule()
        .frame(gtt_mac::SlotframeHandle::new(0))
        .expect("gt-tsch slotframe")
        .cells()
        .iter()
        .filter(|c| c.class == CellClass::Data && c.options.tx)
        .count()
}

/// A GT-TSCH network over `scenario`, built through the experiment seam
/// (no warm-up/measurement — these tests drive the clock themselves).
fn converged(scenario: ScenarioSpec, traffic_ppm: f64, seed: u64) -> gtt_engine::Network {
    Experiment::new(scenario, SchedulerKind::gt_tsch_default())
        .with_run(RunSpec {
            traffic_ppm,
            warmup_secs: 0,
            measure_secs: 0,
            seed,
            ..RunSpec::default()
        })
        .build_network()
}

#[test]
fn schedule_converges_within_a_minute() {
    // From cold boot, every node of a 7-mote DODAG should hold at least
    // one data Tx cell towards its parent within ~60 s of simulated
    // time — the EB/6P pipeline is a handful of 2 s periods per hop.
    let mut net = converged(ScenarioSpec::single_dodag(7), 60.0, 8);
    net.run_for(SimDuration::from_secs(60));
    assert_eq!(net.join_ratio(), 1.0, "all joined");
    for id in 1..7u16 {
        assert!(
            data_tx_cells(&net, id) >= 1,
            "n{id} still has no data cell after 60 s"
        );
    }
}

#[test]
fn allocation_grows_with_rate_increase() {
    // §VI: raising the generation rate must raise the allocated Tx cell
    // count at the sources. We emulate a rate change by comparing two
    // converged networks at different rates (the engine's app rate is
    // fixed per run).
    let cells_at_rate = |ppm: f64| {
        let mut net = converged(ScenarioSpec::single_dodag(5), ppm, 10);
        net.run_for(SimDuration::from_secs(180));
        (1..5u16).map(|id| data_tx_cells(&net, id)).sum::<usize>()
    };
    let light = cells_at_rate(15.0);
    let heavy = cells_at_rate(165.0);
    assert!(
        heavy > light,
        "heavy load must allocate more cells: {light} vs {heavy}"
    );
}

#[test]
fn excess_cells_are_released_after_a_burst() {
    // §IV rule 3 via the DELETE path: inflate allocations with a very
    // lossy phase (queue pressure grants extras), then restore the link
    // and verify the surplus is released again.
    let mut net = converged(ScenarioSpec::line(3, 30.0), 30.0, 12);
    net.run_for(SimDuration::from_secs(120));
    let baseline = data_tx_cells(&net, 1);

    // Degrade n1's uplink: retransmissions back the queue up, the game
    // requests more cells (full-queue regime of eq. 15).
    net.set_link_prr_symmetric(NodeId::new(1), NodeId::new(0), 0.35);
    net.run_for(SimDuration::from_secs(300));
    let inflated = data_tx_cells(&net, 1);

    // Restore the link; the load balancer should shed the surplus back
    // towards demand + slack.
    net.set_link_prr_symmetric(NodeId::new(1), NodeId::new(0), 1.0);
    net.run_for(SimDuration::from_secs(300));
    let settled = data_tx_cells(&net, 1);

    assert!(
        inflated >= baseline,
        "pressure must not shrink the allocation ({baseline} → {inflated})"
    );
    assert!(
        settled <= inflated,
        "restored link must shed surplus cells ({inflated} → {settled})"
    );
}

#[test]
fn control_overhead_is_bounded_in_steady_state() {
    // After convergence, 6P transaction traffic settles: in steady state
    // the failed-transaction counter must grow much slower than during
    // formation (no ADD/DELETE oscillation, no ErrNoCells livelock).
    let mut net = converged(ScenarioSpec::two_dodag(7), 120.0, 14);
    net.run_for(SimDuration::from_secs(240));
    let failures_after_formation: u64 = net
        .nodes()
        .iter()
        .map(|n| n.sixtop.failed_transactions())
        .sum();
    net.run_for(SimDuration::from_secs(240));
    let failures_later: u64 = net
        .nodes()
        .iter()
        .map(|n| n.sixtop.failed_transactions())
        .sum();
    let steady_rate = failures_later - failures_after_formation;
    assert!(
        steady_rate <= failures_after_formation + 20,
        "6P failures keep accumulating in steady state: \
         {failures_after_formation} during formation, +{steady_rate} after"
    );
}

#[test]
fn roots_never_request_cells() {
    let mut net = converged(ScenarioSpec::single_dodag(5), 60.0, 16);
    net.run_for(SimDuration::from_secs(120));
    let root = net.node(NodeId::new(0));
    assert_eq!(
        root.sixtop.completed_transactions() + root.sixtop.failed_transactions(),
        0,
        "the root initiates no 6P transactions (it has no parent)"
    );
    assert_eq!(data_tx_cells(&net, 0), 0, "roots hold no data Tx cells");
}
