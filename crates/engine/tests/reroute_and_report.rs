//! Engine behaviours beyond the happy path: queued-data rerouting on
//! parent switches, report contents, and control-plane hygiene.

use gtt_engine::{EngineConfig, MinimalSchedule, Network};
use gtt_net::{Dest, LinkModel, NodeId, Position, TopologyBuilder};
use gtt_sim::SimDuration;

/// Diamond topology: leaf n3 can reach the root n0 via n1 or n2.
fn diamond_net(seed: u64, ppm: f64) -> Network {
    let topo = TopologyBuilder::new(40.0)
        .link_model(LinkModel::Perfect)
        .node(Position::new(0.0, 0.0))
        .node(Position::new(30.0, 18.0))
        .node(Position::new(30.0, -18.0))
        .node(Position::new(60.0, 0.0))
        .build();
    Network::builder(
        topo,
        EngineConfig {
            seed,
            ..EngineConfig::default()
        },
    )
    .root(NodeId::new(0))
    .traffic_ppm(ppm)
    .scheduler_factory(|_, _| Box::new(MinimalSchedule::new(8)))
    .build()
}

#[test]
fn queued_data_is_rerouted_on_parent_switch() {
    let mut net = diamond_net(5, 30.0);
    net.run_for(SimDuration::from_secs(90));
    let leaf = NodeId::new(3);
    let first_parent = net.node(leaf).rpl.parent().expect("joined");

    // Degrade the current uplink hard; RPL should eventually switch and
    // any queued frames must be re-addressed (not stranded).
    net.set_link_prr_symmetric(leaf, first_parent, 0.05);
    net.run_for(SimDuration::from_secs(400));

    let new_parent = net.node(leaf).rpl.parent().expect("still joined");
    assert_ne!(new_parent, first_parent, "must switch away from a 5% link");
    // No queued frame still addresses the old parent.
    let stranded = net
        .node(leaf)
        .mac
        .drain_count_to(Dest::Unicast(first_parent));
    assert_eq!(stranded, 0, "frames to the old parent must be re-addressed");
    assert!(net.node(leaf).rpl.parent_changes() >= 2);
}

#[test]
fn report_contains_every_node_once() {
    let mut net = diamond_net(7, 20.0);
    net.run_for(SimDuration::from_secs(40));
    net.start_measurement();
    net.run_for(SimDuration::from_secs(60));
    net.finish_measurement();
    let report = net.report();
    assert_eq!(report.per_node.len(), 4);
    let mut ids: Vec<u16> = report.per_node.iter().map(|n| n.id.raw()).collect();
    ids.sort_unstable();
    assert_eq!(ids, vec![0, 1, 2, 3]);
    assert!(report.per_node[0].is_root);
    // Display formatting smoke check.
    let text = report.to_string();
    assert!(text.contains("minimal"), "{text}");
    assert!(text.contains("PDR%"), "{text}");
}

#[test]
fn slot_counters_add_up() {
    // Every slot a node is alive it either transmits, listens (busy or
    // idle) or sleeps — the counters partition the slot count.
    let mut net = diamond_net(9, 30.0);
    net.run_for(SimDuration::from_secs(120));
    for node in net.nodes() {
        let c = node.mac.counters();
        assert_eq!(
            c.slots,
            c.tx_slots + c.rx_busy_slots + c.rx_idle_slots + c.sleep_slots,
            "{}: slot counters must partition",
            node.id()
        );
    }
}

#[test]
fn unicast_accounting_is_consistent() {
    let mut net = diamond_net(11, 60.0);
    net.run_for(SimDuration::from_secs(180));
    for node in net.nodes() {
        let c = node.mac.counters();
        assert!(
            c.unicast_acked <= c.unicast_tx,
            "{}: acks cannot exceed attempts",
            node.id()
        );
        for (peer, stats) in node.mac.link_stats() {
            assert!(
                stats.acked <= stats.tx_attempts,
                "{} → {peer}: per-link acks exceed attempts",
                node.id()
            );
            assert!(stats.etx.value() >= 1.0);
        }
    }
}

#[test]
fn measurement_window_isolates_rates() {
    // Rates are normalized to the measured window, not the whole run:
    // doubling the warm-up must not change received_per_min materially.
    let run = |warmup: u64| {
        let mut net = diamond_net(13, 60.0);
        net.run_for(SimDuration::from_secs(warmup));
        net.start_measurement();
        net.run_for(SimDuration::from_secs(120));
        net.finish_measurement();
        net.report().row.received_per_min
    };
    let short = run(60);
    let long = run(180);
    let rel = (short - long).abs() / short.max(long);
    assert!(
        rel < 0.15,
        "warm-up length leaked into rates: {short:.1} vs {long:.1}"
    );
}
