//! End-to-end engine tests using the built-in minimal (RFC 8180-style)
//! scheduling function.

use gtt_engine::{EngineConfig, MinimalSchedule, Network};
use gtt_net::{LinkModel, NodeId, Position, TopologyBuilder};
use gtt_sim::SimDuration;

fn line_topology(n: usize, spacing: f64) -> gtt_net::Topology {
    TopologyBuilder::new(spacing * 1.2)
        .link_model(LinkModel::Perfect)
        .nodes((0..n).map(|i| Position::new(i as f64 * spacing, 0.0)))
        .build()
}

fn star_topology(leaves: usize) -> gtt_net::Topology {
    let mut b = TopologyBuilder::new(40.0)
        .link_model(LinkModel::Perfect)
        .node(Position::new(0.0, 0.0));
    for i in 0..leaves {
        let angle = i as f64 * std::f64::consts::TAU / leaves as f64;
        b = b.node(Position::new(25.0 * angle.cos(), 25.0 * angle.sin()));
    }
    b.build()
}

fn minimal_net(topo: gtt_net::Topology, seed: u64, ppm: f64) -> Network {
    let cfg = EngineConfig {
        seed,
        ..EngineConfig::default()
    };
    Network::builder(topo, cfg)
        .root(NodeId::new(0))
        .traffic_ppm(ppm)
        .scheduler_factory(|_, _| Box::new(MinimalSchedule::new(8)))
        .build()
}

#[test]
fn nodes_join_a_line_dodag() {
    let mut net = minimal_net(line_topology(4, 30.0), 7, 6.0);
    net.run_for(SimDuration::from_secs(60));
    assert_eq!(net.join_ratio(), 1.0, "all three non-roots should join");
    // Ranks increase along the line.
    let r1 = net.node(NodeId::new(1)).rpl.rank();
    let r2 = net.node(NodeId::new(2)).rpl.rank();
    let r3 = net.node(NodeId::new(3)).rpl.rank();
    assert!(
        r1 < r2 && r2 < r3,
        "ranks must grow with distance: {r1} {r2} {r3}"
    );
    assert_eq!(net.node(NodeId::new(1)).rpl.parent(), Some(NodeId::new(0)));
    assert_eq!(net.node(NodeId::new(2)).rpl.parent(), Some(NodeId::new(1)));
    assert_eq!(net.node(NodeId::new(3)).rpl.parent(), Some(NodeId::new(2)));
}

#[test]
fn parents_learn_children_via_dao() {
    let mut net = minimal_net(line_topology(3, 30.0), 11, 6.0);
    net.run_for(SimDuration::from_secs(90));
    assert_eq!(
        net.node(NodeId::new(0)).rpl.children(),
        vec![NodeId::new(1)]
    );
    assert_eq!(
        net.node(NodeId::new(1)).rpl.children(),
        vec![NodeId::new(2)]
    );
}

#[test]
fn data_flows_to_the_root_in_a_star() {
    let mut net = minimal_net(star_topology(4), 3, 12.0);
    net.run_for(SimDuration::from_secs(30)); // warm-up
    net.start_measurement();
    net.run_for(SimDuration::from_secs(120));
    net.finish_measurement();
    let report = net.report();
    assert!(report.generated > 0, "apps must generate packets");
    assert!(
        report.row.pdr_percent > 80.0,
        "light traffic in a one-hop star should mostly arrive, got {:.1}%",
        report.row.pdr_percent
    );
    // Delay is bookkept on slot starts, and the minimal schedule has a
    // shared cell in every slot: a packet generated in a tx-capable slot
    // legitimately records 0 ms, so only an upper bound is meaningful.
    assert!(
        (0.0..50.0).contains(&report.row.delay_ms),
        "one-hop light traffic should see sub-50ms mean delay, got {} ms",
        report.row.delay_ms
    );
    assert!(report.mean_hops >= 1.0);
}

#[test]
fn multihop_delivery_works() {
    let mut net = minimal_net(line_topology(4, 30.0), 5, 4.0);
    net.run_for(SimDuration::from_secs(60));
    net.start_measurement();
    net.run_for(SimDuration::from_secs(180));
    net.finish_measurement();
    let report = net.report();
    assert!(report.generated > 0);
    assert!(
        report.row.pdr_percent > 60.0,
        "line PDR too low: {:.1}%",
        report.row.pdr_percent
    );
    // Deliveries from node 3 take 3 hops; mean across nodes must exceed 1.
    assert!(
        report.mean_hops > 1.2,
        "expected multi-hop deliveries, mean hops {}",
        report.mean_hops
    );
}

#[test]
fn same_seed_is_deterministic() {
    let run = |seed| {
        let mut net = minimal_net(line_topology(4, 30.0), seed, 10.0);
        net.run_for(SimDuration::from_secs(40));
        net.start_measurement();
        net.run_for(SimDuration::from_secs(60));
        net.finish_measurement();
        let r = net.report();
        (
            r.generated,
            r.delivered,
            r.row.pdr_percent,
            r.row.delay_ms,
            r.row.duty_cycle_percent,
        )
    };
    assert_eq!(run(42), run(42), "identical seeds must replay identically");
    assert_ne!(
        run(42),
        run(43),
        "different seeds should explore different schedules"
    );
}

#[test]
fn duty_cycle_is_sane() {
    let mut net = minimal_net(line_topology(3, 30.0), 9, 6.0);
    net.run_for(SimDuration::from_secs(30));
    net.start_measurement();
    net.run_for(SimDuration::from_secs(60));
    net.finish_measurement();
    let report = net.report();
    assert!(
        report.row.duty_cycle_percent > 0.0 && report.row.duty_cycle_percent <= 100.0,
        "duty cycle {:.2}% out of range",
        report.row.duty_cycle_percent
    );
    for node in &report.per_node {
        assert!(node.duty_cycle >= 0.0 && node.duty_cycle <= 1.0);
        assert!(node.counters.slots > 0);
    }
}

#[test]
fn lossy_links_still_converge() {
    let topo = TopologyBuilder::new(36.0)
        .link_model(LinkModel::Fixed(0.8))
        .nodes((0..3).map(|i| Position::new(i as f64 * 30.0, 0.0)))
        .build();
    let mut net = minimal_net(topo, 21, 6.0);
    net.run_for(SimDuration::from_secs(120));
    assert_eq!(net.join_ratio(), 1.0, "80% links must still form a DODAG");
    // ETX above 1 should be measured on at least one used link.
    let etx = net.node(NodeId::new(1)).mac.etx(NodeId::new(0));
    assert!(etx >= 1.0);
}

#[test]
fn roots_do_not_generate_traffic() {
    let mut net = minimal_net(star_topology(2), 13, 30.0);
    net.run_for(SimDuration::from_secs(60));
    assert_eq!(net.node(NodeId::new(0)).generated_total(), 0);
    assert!(net.node(NodeId::new(1)).generated_total() > 0);
}

#[test]
#[should_panic(expected = "at least one root")]
fn builder_requires_a_root() {
    let _ = Network::builder(line_topology(2, 10.0), EngineConfig::default())
        .scheduler_factory(|_, _| Box::new(MinimalSchedule::new(4)))
        .build();
}

#[test]
#[should_panic(expected = "scheduler factory")]
fn builder_requires_a_factory() {
    let _ = Network::builder(line_topology(2, 10.0), EngineConfig::default())
        .root(NodeId::new(0))
        .build();
}
