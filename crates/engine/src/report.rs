//! Measurement reports.

use gtt_mac::MacCounters;
use gtt_metrics::{jain_index, DelayStats, FigureRow};
use gtt_net::NodeId;
use gtt_rpl::Rank;

use crate::network::Network;

/// Per-node diagnostics included in a [`NetworkReport`].
#[derive(Debug, Clone, PartialEq)]
pub struct NodeSummary {
    /// The node.
    pub id: NodeId,
    /// Whether it is a DODAG root.
    pub is_root: bool,
    /// RPL parent at the end of the run.
    pub parent: Option<NodeId>,
    /// RPL Rank at the end of the run.
    pub rank: Rank,
    /// Radio duty cycle over the measurement window (0..=1).
    pub duty_cycle: f64,
    /// Queue losses during the window.
    pub queue_loss: u64,
    /// Packets dropped after exhausting retransmissions during the window.
    pub retry_drops: u64,
    /// Packets dropped for lack of a route during the window.
    pub routing_drops: u64,
    /// Collisions heard during the window.
    pub collisions_heard: u64,
    /// Total scheduled cells at the end of the run.
    pub scheduled_cells: usize,
    /// Application packets this node generated in the window.
    pub generated: u64,
    /// Of those, packets delivered to a DODAG root.
    pub delivered: u64,
    /// MAC counter deltas over the window.
    pub counters: MacCounters,
}

impl NodeSummary {
    /// This node's packet delivery ratio in percent (100 when it
    /// generated nothing, matching the network-wide convention).
    pub fn pdr_percent(&self) -> f64 {
        if self.generated == 0 {
            return 100.0;
        }
        100.0 * self.delivered as f64 / self.generated as f64
    }
}

/// The outcome of one measured run: the paper's six series plus per-node
/// diagnostics.
///
/// `PartialEq` compares every field (floats bit-for-bit via `==`): two
/// reports are equal only when the runs were behaviorally identical.
/// The `step_equivalence` tests rely on this to pin the event-driven
/// engine to the `naive-step` oracle.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkReport {
    /// Scheduler name (from the root node's scheduling function).
    pub scheduler: &'static str,
    /// The paper's six metrics.
    pub row: FigureRow,
    /// Packets generated in the window.
    pub generated: u64,
    /// Packets delivered to roots in the window.
    pub delivered: u64,
    /// Mean hop count of delivered packets.
    pub mean_hops: f64,
    /// Fraction of non-root nodes joined at the end.
    pub join_ratio: f64,
    /// Streaming end-to-end delay statistics (integer-nanosecond sums,
    /// min/max, fixed-bin histogram for percentiles) over delivered
    /// packets — deterministic across sequential/parallel/oracle runs.
    pub delay: DelayStats,
    /// Per-node breakdown.
    pub per_node: Vec<NodeSummary>,
}

impl NetworkReport {
    /// Per-origin packet delivery ratio, dense over all nodes in
    /// canonical id order (roots included, reporting 100% since they
    /// generate nothing).
    pub fn pdr_by_origin(&self) -> Vec<(NodeId, f64)> {
        self.per_node
            .iter()
            .map(|n| (n.id, n.pdr_percent()))
            .collect()
    }

    /// Jain's fairness index over non-root delivered throughput —
    /// `(Σx)²/(n·Σx²)` in `[1/n, 1]`, 1.0 when all non-root nodes saw
    /// equal service (or nothing was delivered at all).
    pub fn fairness(&self) -> f64 {
        let delivered: Vec<f64> = self
            .per_node
            .iter()
            .filter(|n| !n.is_root)
            .map(|n| n.delivered as f64)
            .collect();
        jain_index(&delivered)
    }

    pub(crate) fn collect(net: &Network) -> NetworkReport {
        let start = net
            .measure_start
            .expect("report requires start_measurement()");
        let end = net
            .measure_end
            .expect("report requires finish_measurement()");
        assert!(end > start, "measurement window is empty");

        let idle_fraction = net.config.mac.idle_listen_fraction;
        let mut per_node = Vec::with_capacity(net.nodes.len());
        let mut duty_sum = 0.0;
        let mut queue_loss_sum = 0.0;
        let mut non_roots = 0u32;

        let tracker = net.tracker();
        for (i, node) in net.nodes.iter().enumerate() {
            let snap = net.snapshots.get(i).copied().unwrap_or_default();
            let c = node.mac.counters();
            let d = MacCounters {
                slots: c.slots - snap.counters.slots,
                tx_slots: c.tx_slots - snap.counters.tx_slots,
                rx_busy_slots: c.rx_busy_slots - snap.counters.rx_busy_slots,
                rx_idle_slots: c.rx_idle_slots - snap.counters.rx_idle_slots,
                sleep_slots: c.sleep_slots - snap.counters.sleep_slots,
                unicast_tx: c.unicast_tx - snap.counters.unicast_tx,
                unicast_acked: c.unicast_acked - snap.counters.unicast_acked,
                broadcast_tx: c.broadcast_tx - snap.counters.broadcast_tx,
                drops_retry_exhausted: c.drops_retry_exhausted
                    - snap.counters.drops_retry_exhausted,
                collisions_heard: c.collisions_heard - snap.counters.collisions_heard,
                rx_accepted: c.rx_accepted - snap.counters.rx_accepted,
                rx_overheard: c.rx_overheard - snap.counters.rx_overheard,
            };
            let duty = if d.slots == 0 {
                0.0
            } else {
                (d.tx_slots as f64
                    + d.rx_busy_slots as f64
                    + d.rx_idle_slots as f64 * idle_fraction)
                    / d.slots as f64
            };
            let queue_loss = node.mac.queue_loss() - snap.queue_loss;
            let is_root = node.rpl.is_root();

            duty_sum += duty;
            if !is_root {
                queue_loss_sum += queue_loss as f64;
                non_roots += 1;
            }

            let (origin_generated, origin_delivered) = tracker.origin_stats(node.id());
            per_node.push(NodeSummary {
                id: node.id(),
                is_root,
                parent: node.rpl.parent(),
                rank: node.rpl.rank(),
                duty_cycle: duty,
                queue_loss,
                retry_drops: d.drops_retry_exhausted,
                routing_drops: node.routing_drops - snap.routing_drops,
                collisions_heard: d.collisions_heard,
                scheduled_cells: node.mac.schedule().total_cells(),
                generated: origin_generated,
                delivered: origin_delivered,
                counters: d,
            });
        }

        let row = FigureRow {
            pdr_percent: tracker.pdr_percent(),
            delay_ms: tracker.mean_delay_ms(),
            loss_per_min: tracker.loss_per_minute(),
            duty_cycle_percent: 100.0 * duty_sum / net.nodes.len().max(1) as f64,
            queue_loss: if non_roots == 0 {
                0.0
            } else {
                queue_loss_sum / non_roots as f64
            },
            received_per_min: tracker.received_per_minute(),
        };

        NetworkReport {
            scheduler: net.nodes[0].scheduler.name(),
            row,
            generated: tracker.generated(),
            delivered: tracker.delivered(),
            mean_hops: tracker.mean_hops(),
            join_ratio: net.join_ratio(),
            delay: tracker.delay_stats().clone(),
            per_node,
        }
    }
}

impl std::fmt::Display for NetworkReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "[{}] generated={} delivered={} join={:.0}% fairness={:.3}",
            self.scheduler,
            self.generated,
            self.delivered,
            self.join_ratio * 100.0,
            self.fairness()
        )?;
        if self.delay.count() > 0 {
            writeln!(
                f,
                "delay p50/p95/p99 = {:.1}/{:.1}/{:.1} ms",
                self.delay.percentile_ms(50.0),
                self.delay.percentile_ms(95.0),
                self.delay.percentile_ms(99.0)
            )?;
        }
        writeln!(f, "{}", FigureRow::header())?;
        write!(f, "{}", self.row)
    }
}
