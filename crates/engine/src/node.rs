//! A simulated IoT node: MAC + RPL + 6P + application + scheduler.

use gtt_mac::TschMac;
use gtt_net::{Dest, Frame, NodeId, PacketId};
use gtt_rpl::{RplAction, RplNode};
use gtt_sim::{Pcg32, SimDuration, SimTime, TimerWheel};
use gtt_sixtop::{SixtopEvent, SixtopLayer};

use crate::payload::Payload;
use crate::scheduler::{OutgoingControl, SchedulingFunction, SfContext};

/// Constant-bit-rate application traffic source.
///
/// Generates one upward data packet every `60/rate_ppm` seconds, starting
/// at a random phase so nodes do not fire in lock-step (the paper's motes
/// boot asynchronously).
#[derive(Debug, Clone)]
pub struct AppTraffic {
    /// Packets per minute.
    pub rate_ppm: f64,
    period: SimDuration,
    next: SimTime,
}

impl AppTraffic {
    /// Creates a CBR source with a random initial phase.
    ///
    /// # Panics
    ///
    /// Panics if `rate_ppm` is not finite and positive.
    pub fn new(rate_ppm: f64, rng: &mut Pcg32) -> Self {
        assert!(
            rate_ppm.is_finite() && rate_ppm > 0.0,
            "traffic rate must be positive, got {rate_ppm}"
        );
        let period = SimDuration::from_secs_f64(60.0 / rate_ppm);
        let phase =
            SimDuration::from_micros(rng.gen_range_u32(0, period.as_micros().max(2) as u32) as u64);
        AppTraffic {
            rate_ppm,
            period,
            next: SimTime::ZERO + phase,
        }
    }

    /// Number of packets due at or before `now`; advances the phase.
    pub fn due_packets(&mut self, now: SimTime) -> u32 {
        self.due(now)
    }

    /// When the next packet becomes due (always in the future of the last
    /// [`AppTraffic::due_packets`] query).
    pub fn next_due(&self) -> SimTime {
        self.next
    }

    /// Number of packets due at or before `now`; advances the phase.
    fn due(&mut self, now: SimTime) -> u32 {
        let mut n = 0;
        while self.next <= now {
            self.next += self.period;
            n += 1;
        }
        n
    }
}

/// The node-level timers multiplexed through one [`TimerWheel`]. The
/// engine's wake heap is fed by the wheel's single `next_deadline()`
/// instead of a hand-maintained min over per-timer struct fields; RPL
/// housekeeping is *not* a wheel entry any more — the RPL layer reports
/// its own exact deadline ([`RplNode::next_deadline`]).
///
/// Variant order is firing order for simultaneously-due timers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) enum TimerKind {
    /// TSCH Enhanced Beacon (one-shot, re-armed with ±25% jitter).
    Eb,
    /// Scheduling-function `periodic` hook (periodic).
    Sf,
}

/// One simulated mote.
pub struct Node {
    /// TSCH MAC.
    pub mac: TschMac<Payload>,
    /// RPL routing.
    pub rpl: RplNode,
    /// 6P transaction layer.
    pub sixtop: SixtopLayer,
    /// The pluggable scheduling function.
    pub scheduler: Box<dyn SchedulingFunction>,
    /// Application traffic source (`None` for roots / silent nodes).
    pub app: Option<AppTraffic>,
    /// While set, due application packets are discarded instead of
    /// enqueued (duty-cycle-budget throttling). The source's phase keeps
    /// advancing, so unthrottling never releases a catch-up burst and the
    /// node's wake pattern is identical throttled or not.
    pub(crate) app_throttled: bool,
    pub(crate) rng: Pcg32,
    /// Node-level timers (EB, SF period), keyed by [`TimerKind`].
    pub(crate) timers: TimerWheel<TimerKind>,
    /// Drain scratch for the wheel, reused across upkeep passes so the
    /// engine hot path never allocates for timer firing.
    fired_timers: Vec<TimerKind>,
    /// RPL action scratch (fire_due / handle_dio out-buffer), reused so
    /// steady-state housekeeping and DIO handling never allocate.
    rpl_actions: Vec<RplAction>,
    /// Scheduler-hook control-message scratch ([`SfContext::out`]),
    /// reused for the same reason.
    control_out: Vec<OutgoingControl>,
    /// Nominal EB period (jittered ±25% per beacon).
    pub(crate) eb_period: SimDuration,
    /// `false` once the node has been killed by fault injection; a dead
    /// node neither plans slots nor runs timers.
    pub(crate) alive: bool,
    /// Data packets dropped because the node had no parent to forward to.
    pub(crate) routing_drops: u64,
    /// Packets this node generated (lifetime, unwindowed).
    pub(crate) generated_total: u64,
    /// Next local sequence number for origin-keyed packet ids
    /// (`id = origin << 48 | seq`): ids stay globally unique without a
    /// network-global counter, so id assignment is independent of the
    /// order nodes are stepped in (and of island parallelism).
    pub(crate) packet_seq: u64,
    /// First ASN not yet reflected in the MAC's slot counters: the
    /// event-driven engine accounts skipped sleep slots lazily, and this
    /// is the low-water mark (see `Network::sync_accounting`).
    pub(crate) accounted_asn: u64,
    /// Memo of the last timer-deadline → wake-slot conversion, so
    /// rescheduling a node whose deadlines did not move skips the
    /// division (deadlines change on timer fires, not on every wake).
    pub(crate) timer_wake_memo: Option<(SimTime, u64)>,
}

/// What a node wants transmitted / recorded after an upkeep pass.
#[derive(Debug, Default)]
pub(crate) struct UpkeepOutput {
    /// Data packets generated this pass (the network assigns
    /// origin-keyed ids from [`Node::packet_seq`]).
    pub generated_packets: u32,
    /// Parent changes to report to the scheduler (old, new).
    pub parent_changes: Vec<(Option<NodeId>, NodeId)>,
}

impl Node {
    pub(crate) fn new(
        mac: TschMac<Payload>,
        rpl: RplNode,
        sixtop: SixtopLayer,
        scheduler: Box<dyn SchedulingFunction>,
        rng: Pcg32,
    ) -> Self {
        Node {
            mac,
            rpl,
            sixtop,
            scheduler,
            app: None,
            app_throttled: false,
            rng,
            timers: TimerWheel::new(),
            fired_timers: Vec::new(),
            rpl_actions: Vec::new(),
            control_out: Vec::new(),
            eb_period: SimDuration::from_secs(2),
            alive: true,
            routing_drops: 0,
            generated_total: 0,
            packet_seq: 0,
            accounted_asn: 0,
            timer_wake_memo: None,
        }
    }

    /// A dead filler node for the island split: partition islands are
    /// full-length `Network`s so node indices stay valid, and every
    /// non-member slot holds one of these. `alive` is `false` and no
    /// timer is armed, so the engine provably never wakes, probes or
    /// accounts it; its state is discarded at merge.
    #[cfg(feature = "parallel")]
    pub(crate) fn placeholder(id: NodeId, config: &crate::config::EngineConfig) -> Self {
        let mac = TschMac::new(
            id,
            config.mac.clone(),
            config.hopping.clone(),
            Pcg32::new(0),
        );
        let rpl = RplNode::new(id, config.rpl.clone());
        let sixtop = SixtopLayer::new(id, config.sixtop.clone());
        // Never invoked (dead nodes run no hooks); any scheduler works.
        let scheduler = Box::new(crate::minimal::MinimalSchedule::new(8));
        let mut node = Node::new(mac, rpl, sixtop, scheduler, Pcg32::new(0));
        node.alive = false;
        node
    }

    /// The earliest instant at which [`Node::upkeep`] would do anything:
    /// the minimum over the node-level timer wheel (EB, SF period), the
    /// RPL layer's own deadline (neighbor/child expiry, ETX-driven rank
    /// refresh, Trickle firing, DAO refresh), pending 6P transaction
    /// deadlines and the application's next packet. Strictly before this
    /// instant, `upkeep` is a no-op (no state change, no RNG draw), which
    /// is what lets the event-driven engine skip it.
    pub(crate) fn next_timer_deadline(&self) -> Option<SimTime> {
        [
            self.timers.next_deadline(),
            self.rpl.next_deadline(),
            self.sixtop.next_deadline(),
            self.app.as_ref().map(AppTraffic::next_due),
        ]
        .into_iter()
        .flatten()
        .min()
    }

    /// This node's id.
    pub fn id(&self) -> NodeId {
        self.mac.id()
    }

    /// Lifetime count of packets generated by the local application.
    pub fn generated_total(&self) -> u64 {
        self.generated_total
    }

    /// Data packets dropped for lack of a route.
    pub fn routing_drops(&self) -> u64 {
        self.routing_drops
    }

    /// True unless the node was killed by fault injection.
    pub fn is_alive(&self) -> bool {
        self.alive
    }

    /// True while the application source is throttled (see
    /// [`Network::set_app_throttled`](crate::Network)).
    pub fn is_app_throttled(&self) -> bool {
        self.app_throttled
    }

    /// Runs a scheduler hook with a fully-wired [`SfContext`], then
    /// flushes any messages the hook queued into the MAC control queue.
    pub(crate) fn with_scheduler(
        &mut self,
        now: SimTime,
        f: impl FnOnce(&mut dyn SchedulingFunction, &mut SfContext<'_>),
    ) {
        // Reused out-buffer (taken for the duration of the hook): hooks
        // that queue nothing — the steady-state norm — never allocate.
        let mut out = std::mem::take(&mut self.control_out);
        let app_rate = self.app.as_ref().map_or(0.0, |a| a.rate_ppm);
        {
            let Node {
                mac,
                rpl,
                sixtop,
                scheduler,
                rng,
                ..
            } = self;
            let mut ctx = SfContext {
                mac,
                rpl,
                sixtop,
                rng,
                now,
                app_rate_ppm: app_rate,
                out: &mut out,
            };
            f(scheduler.as_mut(), &mut ctx);
        }
        self.flush_control(&mut out, now);
        self.control_out = out;
    }

    /// Enqueues scheduler-produced control messages, draining `out`.
    pub(crate) fn flush_control(&mut self, out: &mut Vec<OutgoingControl>, now: SimTime) {
        for msg in out.drain(..) {
            self.enqueue_control_payload(msg.to, msg.payload, now);
        }
    }

    /// Wraps a payload in a frame and enqueues it on the control queue.
    /// Control-queue overflow silently drops the frame (periodic control
    /// traffic is self-healing: EBs/DIOs recur, 6P retries).
    pub(crate) fn enqueue_control_payload(&mut self, to: Dest, payload: Payload, now: SimTime) {
        let class = payload
            .traffic_class()
            .expect("control path used for data payload");
        let id = PacketId::new(u64::MAX); // control frames are not tracked
        let frame = Frame::new(id, self.id(), to, now, payload);
        let _ = self.mac.enqueue_control(frame, class);
    }

    /// Handles RPL actions produced by `handle_dio_into` or
    /// `fire_due_into`, draining `actions` (a reusable buffer).
    pub(crate) fn process_rpl_actions(
        &mut self,
        actions: &mut Vec<RplAction>,
        now: SimTime,
        output: &mut UpkeepOutput,
    ) {
        for action in actions.drain(..) {
            match action {
                RplAction::BroadcastDio(mut dio) => {
                    // Patch in the GT-TSCH l_rx option (paper §VII).
                    dio.rx_free = self.scheduler.dio_rx_free(&self.mac, &self.rpl);
                    self.enqueue_control_payload(Dest::Broadcast, Payload::Dio(dio), now);
                }
                RplAction::SendDao { to, dao } => {
                    self.enqueue_control_payload(Dest::Unicast(to), Payload::Dao(dao), now);
                }
                RplAction::ParentChanged { old, new } => {
                    // Re-address queued upward data to the new parent.
                    if let Some(old_parent) = old {
                        let stranded = self
                            .mac
                            .drain_data_where(|f| f.dst == Dest::Unicast(old_parent));
                        for frame in stranded {
                            let mut f = frame;
                            f.dst = Dest::Unicast(new);
                            f.src = self.id();
                            let _ = self.mac.enqueue_data(f);
                        }
                    }
                    output.parent_changes.push((old, new));
                }
            }
        }
    }

    /// Per-slot upkeep: the node-level timer wheel (EB, SF period), RPL's
    /// deadline-driven housekeeping, 6P retries and the application.
    /// Returns how many data packets the app generated (the network
    /// assigns their ids so they are globally unique).
    pub(crate) fn upkeep(&mut self, now: SimTime) -> UpkeepOutput {
        let mut output = UpkeepOutput::default();

        // One wheel drain covers every node-level timer; the scratch Vec
        // is reused so the hot path does not allocate.
        let mut fired = std::mem::take(&mut self.fired_timers);
        self.timers.fire_due_into(now, &mut fired);

        // TSCH Enhanced Beacons: only joined nodes advertise the DODAG.
        // The next beacon is re-armed with ±25% jitter (as Contiki-NG
        // randomizes TSCH_EB_PERIOD): with fixed phases, two hidden
        // senders can stay aligned on the broadcast-slot grid forever and
        // a third node between them would never decode either.
        if fired.contains(&TimerKind::Eb) {
            if self.rpl.is_joined() {
                let info = self.scheduler.eb_info(&self.mac, &self.rpl);
                self.enqueue_control_payload(Dest::Broadcast, Payload::Eb(info), now);
            }
            let base = self.eb_period.as_micros();
            let jitter = self.rng.gen_range_u32(0, (base / 2).max(2) as u32) as u64;
            self.timers.arm_one_shot(
                TimerKind::Eb,
                now + SimDuration::from_micros(base * 3 / 4 + jitter),
            );
        }

        // RPL housekeeping: deadline-driven — the call is a provable
        // no-op before `RplNode::next_deadline`, so running it on every
        // upkeep costs nothing on wake-ups where no RPL work is due. The
        // action buffer is node-owned scratch: steady-state firing (a
        // Trickle DIO, a DAO refresh) appends into warm capacity.
        let mut actions = std::mem::take(&mut self.rpl_actions);
        {
            let Node { mac, rpl, .. } = self;
            let etx = |n: NodeId| mac.etx(n);
            rpl.fire_due_into(now, &etx, &mut actions);
        }
        if !actions.is_empty() {
            self.process_rpl_actions(&mut actions, now, &mut output);
        }
        self.rpl_actions = actions;

        // 6P timeouts / retries.
        let (resends, failures) = self.sixtop.poll(now);
        for (peer, msg) in resends {
            self.enqueue_control_payload(Dest::Unicast(peer), Payload::SixP(msg), now);
        }
        for event in failures {
            self.dispatch_sixtop_event(event, now);
        }

        // Scheduling-function period.
        if fired.contains(&TimerKind::Sf) {
            self.with_scheduler(now, |sf, ctx| sf.periodic(ctx));
        }
        self.fired_timers = fired;

        // Application traffic: only joined, routed, unthrottled nodes
        // generate. `due` is drawn unconditionally so a throttled
        // source's phase advances exactly as an active one's would.
        if let Some(app) = self.app.as_mut() {
            let due = app.due(now);
            if due > 0 && !self.app_throttled && self.rpl.is_joined() && !self.rpl.is_root() {
                output.generated_packets = due;
            }
        }

        output
    }

    /// Takes the node's reusable RPL action buffer (empty) for an
    /// out-of-band `handle_dio_into` call; return it with
    /// [`Node::restore_rpl_actions`].
    pub(crate) fn take_rpl_actions(&mut self) -> Vec<RplAction> {
        std::mem::take(&mut self.rpl_actions)
    }

    /// Returns the buffer taken by [`Node::take_rpl_actions`].
    pub(crate) fn restore_rpl_actions(&mut self, actions: Vec<RplAction>) {
        debug_assert!(actions.is_empty(), "RPL action buffer must be drained");
        self.rpl_actions = actions;
    }

    /// Routes a 6P event through the scheduler.
    pub(crate) fn dispatch_sixtop_event(&mut self, event: SixtopEvent, now: SimTime) {
        self.with_scheduler(now, |sf, ctx| sf.on_sixtop_event(ctx, &event));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn app_traffic_rate() {
        let mut rng = Pcg32::new(1);
        let mut app = AppTraffic::new(60.0, &mut rng); // 1 pkt/s
        let mut total = 0;
        for s in 1..=30 {
            total += app.due(SimTime::from_secs(s));
        }
        assert!((29..=31).contains(&total), "got {total} packets in 30 s");
    }

    #[test]
    fn app_traffic_phases_differ() {
        let mut rng = Pcg32::new(2);
        let a = AppTraffic::new(30.0, &mut rng);
        let b = AppTraffic::new(30.0, &mut rng);
        assert_ne!(a.next, b.next, "random phases should differ");
    }

    #[test]
    fn burst_catchup_counts_all_due() {
        let mut rng = Pcg32::new(3);
        let mut app = AppTraffic::new(120.0, &mut rng); // every 0.5 s
                                                        // Jump 10 s ahead: ~20 packets due at once.
        let due = app.due(SimTime::from_secs(10));
        assert!((19..=21).contains(&due), "got {due}");
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_rate_rejected() {
        let mut rng = Pcg32::new(4);
        let _ = AppTraffic::new(0.0, &mut rng);
    }
}
