//! Island-parallel stepping (the `parallel` feature).
//!
//! Nodes in different connected components of the *audibility* graph
//! ([`Topology::audibility_islands`](gtt_net::Topology::audibility_islands))
//! cannot exchange energy — not even as interference — so a stepping
//! window that contains no topology mutation can be resolved
//! island-by-island in any order, including concurrently. This module
//! exploits that: [`Network::run_until`] with the parallel switch on
//! splits the network into one full-length sub-`Network` per island,
//! runs each on its own scoped thread through the ordinary sequential
//! event core, and merges the results back in canonical island order
//! (islands sorted by smallest member id).
//!
//! # Why the reports are byte-identical
//!
//! Every source of nondeterminism is keyed by node, not by stepping
//! order:
//!
//! * link-error draws come from per-node streams
//!   ([`DrawStreams`](gtt_net::DrawStreams)) keyed by the drawing node,
//! * packet ids are origin-keyed (`origin << 48 | seq`), and
//! * the merge itself copies per-member state and folds the tracker's
//!   member lanes plus integer counter/delay deltas back in canonical
//!   order ([`PacketTracker::absorb_branch`]).
//!
//! Topology mutations (`move_node`, PRR overrides, `kill_node`,
//! `node_mut`) all happen *between* stepping calls, so islands are
//! stable for the whole window and are recomputed fresh on the next
//! call — a mid-run mobility hop that splits or merges islands is
//! handled by construction. `tests/step_equivalence.rs` pins parallel ==
//! sequential == naive-step byte-for-byte, including that case.

use std::collections::BinaryHeap;

use gtt_metrics::TrackerMark;
use gtt_net::NodeId;
use gtt_sim::SimTime;

use crate::network::{Network, ProbeEntry, SlotScratch};
use crate::node::Node;

/// Retained pool of island sub-network shells (ROADMAP carry-over (c)).
///
/// Each `run_until` window needs one full-length sub-`Network` per
/// island. Building them fresh costs n placeholder [`Node`]s plus five
/// O(n) vectors per island per window — fine at 2 islands, ruinous at
/// the hundreds a city-scale scenario produces. The pool keeps the
/// shells alive between windows, keyed by island membership: a shell is
/// only reused for the *exact* member list it was stashed under (hash as
/// fast filter, full member-vector equality as the collision guard), and
/// [`Network::refresh_island_shell`] resets every piece of state a fresh
/// shell would carry, so reuse is pure allocation recycling — reports
/// are byte-identical with and without it.
#[derive(Default)]
pub(crate) struct IslandPool {
    entries: Vec<PoolEntry>,
}

struct PoolEntry {
    key: u64,
    members: Vec<NodeId>,
    sub: Network,
}

/// FNV-1a over the little-endian member ids — a fast filter only;
/// checkout always verifies the full member list before reuse.
fn membership_key(members: &[NodeId]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325_u64;
    for m in members {
        for b in m.raw().to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
    }
    h
}

impl IslandPool {
    /// A ready-to-run shell for `members`: a pooled one (refreshed in
    /// place) when this exact island was stashed before, a fresh build
    /// otherwise.
    fn checkout(&mut self, parent: &Network, members: &[NodeId]) -> Network {
        let key = membership_key(members);
        if let Some(pos) = self
            .entries
            .iter()
            .position(|e| e.key == key && e.members == members)
        {
            let mut sub = self.entries.swap_remove(pos).sub;
            parent.refresh_island_shell(&mut sub);
            return sub;
        }
        parent.fresh_island_shell()
    }

    /// Returns a merged-out shell to the pool under its membership key.
    ///
    /// The pool is bounded: a mobility-churned partition would otherwise
    /// accumulate one stale shell per historical island. Keeping up to
    /// two generations lets A→B→A island flips still hit; beyond that,
    /// the oldest entries are dropped (deterministic — no clocks).
    fn stash(&mut self, islands_this_window: usize, members: &[NodeId], sub: Network) {
        self.entries.push(PoolEntry {
            key: membership_key(members),
            members: members.to_vec(),
            sub,
        });
        let cap = islands_this_window * 2 + 4;
        if self.entries.len() > cap {
            self.entries.drain(..self.entries.len() - cap);
        }
    }
}

impl Network {
    /// [`Network::run_until`] resolving each partition island on its own
    /// scoped thread. Falls back to the sequential event core when the
    /// audibility graph has fewer than two islands.
    pub(crate) fn run_until_parallel(&mut self, end: SimTime) {
        let islands = self.medium.topology().audibility_islands();
        if islands.len() < 2 {
            self.run_until_event(end);
            return;
        }
        self.ensure_wake_queue();

        let mut island_of = vec![0usize; self.nodes.len()];
        for (k, members) in islands.iter().enumerate() {
            for &m in members {
                island_of[m.index()] = k;
            }
        }

        let mark = self.tracker.mark();
        // Check out one shell per island (pool hits reuse allocations),
        // route pending wake-ups into the owning shell's heap, then move
        // the members in.
        let mut pool = std::mem::take(&mut self.island_pool);
        let mut subs: Vec<Network> = islands
            .iter()
            .map(|members| pool.checkout(self, members))
            .collect();
        for entry in std::mem::take(&mut self.wake) {
            let std::cmp::Reverse((_, i)) = entry;
            subs[island_of[i as usize]].wake.push(entry);
        }
        for (members, sub) in islands.iter().zip(subs.iter_mut()) {
            for &m in members {
                let i = m.index();
                std::mem::swap(&mut sub.nodes[i], &mut self.nodes[i]);
                sub.wake_slot[i] = self.wake_slot[i];
                sub.timer_wake[i] = self.timer_wake[i];
            }
        }

        crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = subs
                .iter_mut()
                .map(|sub| scope.spawn(move |_| sub.run_until_event(end)))
                .collect();
            for handle in handles {
                handle.join().expect("island thread panicked");
            }
        })
        .expect("island scope failed");

        // Merge in canonical island order: islands are disjoint, so the
        // order only decides tracker union tie-breaks on corner cases
        // that disjointness already rules out — but fixing it keeps the
        // whole path a pure function of (seed, experiment). Merged-out
        // shells go back to the pool for the next window.
        for (members, mut sub) in islands.iter().zip(subs) {
            debug_assert_eq!(sub.asn, {
                let slot = self.config.mac.slot_duration;
                gtt_mac::Asn::at_or_after(end, slot)
            });
            self.asn = sub.asn;
            self.merge_island(&mut sub, members, &mark);
            pool.stash(islands.len(), members, sub);
        }
        self.island_pool = pool;
    }

    /// A new full-length sub-network shell: every node a dead
    /// [`Node::placeholder`], no pending wake-ups, all per-node state at
    /// its rest value, ready for members to be swapped in.
    fn fresh_island_shell(&self) -> Network {
        let n = self.nodes.len();
        Network {
            config: self.config.clone(),
            nodes: (0..n)
                .map(|i| Node::placeholder(NodeId::from_index(i), &self.config))
                .collect(),
            // The medium clone carries every node's draw-stream state;
            // the island only advances its own members' streams
            // (listener- and transmitter-keyed draws), which are copied
            // back at merge.
            medium: self.medium.clone(),
            tracker: self.tracker.clone(),
            asn: self.asn,
            measure_start: self.measure_start,
            measure_end: self.measure_end,
            snapshots: Vec::new(),
            wake: BinaryHeap::new(),
            wake_init: true,
            wake_scratch: vec![0; n],
            // All-stale probe entries only cost the island one re-probe
            // per listener; resolution results are unaffected.
            probe_index: vec![ProbeEntry::NEVER; n],
            probe_stale: vec![true; n],
            wake_slot: vec![u64::MAX; n],
            timer_wake: vec![u64::MAX; n],
            scratch: SlotScratch::default(),
            tap: None,
            naive: false,
            parallel: false,
            island_pool: IslandPool::default(),
        }
    }

    /// Resets a pooled shell to exactly the state
    /// [`Network::fresh_island_shell`] would build, reusing its
    /// allocations (`clone_from` on the medium/config/tracker, in-place
    /// fills for the per-node vectors).
    ///
    /// The nodes need no touch-up: a pooled shell holds only
    /// placeholders (members are swapped back at merge), and
    /// placeholders never step — no wake entry ever names them — so they
    /// are still in their as-constructed state. `scratch` is per-slot
    /// working memory the sequential core itself reuses across slots
    /// without resetting, so its carried-over contents are equally
    /// unobservable here.
    fn refresh_island_shell(&self, sub: &mut Network) {
        sub.config.clone_from(&self.config);
        sub.medium.clone_from(&self.medium);
        sub.tracker.clone_from(&self.tracker);
        sub.asn = self.asn;
        sub.measure_start = self.measure_start;
        sub.measure_end = self.measure_end;
        sub.snapshots.clear();
        sub.wake.clear();
        sub.wake_init = true;
        sub.wake_scratch.fill(0);
        sub.probe_index.fill(ProbeEntry::NEVER);
        sub.probe_stale.fill(true);
        sub.wake_slot.fill(u64::MAX);
        sub.timer_wake.fill(u64::MAX);
        sub.naive = false;
        sub.parallel = false;
    }

    /// Folds a stepped island back into `self`: member nodes, wake
    /// state, per-member draw streams, and the tracker delta. Leaves
    /// `sub` holding only placeholders, ready to pool.
    fn merge_island(&mut self, sub: &mut Network, members: &[NodeId], mark: &TrackerMark) {
        for &m in members {
            let i = m.index();
            std::mem::swap(&mut self.nodes[i], &mut sub.nodes[i]);
            self.wake_slot[i] = sub.wake_slot[i];
            self.timer_wake[i] = sub.timer_wake[i];
            // The island's probe entries were built against its own
            // wake heap; re-derive lazily in the parent.
            self.probe_stale[i] = true;
        }
        // Island heaps only ever contain member entries, so the union
        // of the merged heaps is exactly the parent's pending wake set.
        // Draining (rather than moving) keeps the heap's capacity with
        // the pooled shell.
        self.wake.extend(sub.wake.drain());
        self.medium.adopt_draws(&sub.medium, members);
        // Member lanes swap into the parent; the stale prefix buffers the
        // shell receives back are recycled by the next refresh.
        self.tracker.absorb_branch(&mut sub.tracker, mark, members);
    }
}

#[cfg(test)]
mod tests {
    use gtt_net::{LinkModel, Position, TopologyBuilder};
    use gtt_sim::SimDuration;

    use crate::config::EngineConfig;
    use crate::minimal::MinimalSchedule;
    use crate::network::Network;

    /// Two 4-node stars 1 km apart: two islands.
    fn two_star_network(parallel: bool) -> Network {
        let topo = TopologyBuilder::new(40.0)
            .link_model(LinkModel::default())
            .nodes((0..4).map(|i| Position::new(f64::from(i) * 25.0, 0.0)))
            .nodes((0..4).map(|i| Position::new(1000.0 + f64::from(i) * 25.0, 0.0)))
            .build();
        let mut builder = Network::builder(topo, EngineConfig::default())
            .root(gtt_net::NodeId::new(0))
            .root(gtt_net::NodeId::new(4))
            .traffic_ppm(30.0)
            .scheduler_factory(|_, _| Box::new(MinimalSchedule::new(8)));
        if parallel {
            builder = builder.parallel_stepping();
        }
        builder.build()
    }

    #[test]
    fn parallel_run_matches_sequential_byte_for_byte() {
        let mut seq = two_star_network(false);
        let mut par = two_star_network(true);
        for net in [&mut seq, &mut par] {
            net.run_for(SimDuration::from_secs(30));
            net.start_measurement();
            net.run_for(SimDuration::from_secs(30));
            net.finish_measurement();
        }
        assert_eq!(seq.asn(), par.asn());
        assert_eq!(seq.report(), par.report());
    }

    #[test]
    fn set_parallel_toggles_at_runtime() {
        let mut seq = two_star_network(false);
        let mut par = two_star_network(false);
        par.set_parallel(true);
        assert!(par.parallel_enabled());
        seq.run_for(SimDuration::from_secs(20));
        par.run_for(SimDuration::from_secs(20));
        // Toggling back mid-run keeps the trajectory identical: the
        // switch changes wall-clock behavior only.
        par.set_parallel(false);
        for net in [&mut seq, &mut par] {
            net.start_measurement();
            net.run_for(SimDuration::from_secs(20));
            net.finish_measurement();
        }
        assert_eq!(seq.report(), par.report());
    }

    #[test]
    fn pooled_shells_survive_island_churn_byte_for_byte() {
        let mut seq = two_star_network(false);
        let mut par = two_star_network(true);
        for net in [&mut seq, &mut par] {
            net.run_for(SimDuration::from_secs(10));
            // n3 walks over to the far star: both islands change
            // membership, so the next window misses the pool and stashes
            // a second generation of shells.
            net.move_node(gtt_net::NodeId::new(3), Position::new(1000.0, 25.0));
            net.run_for(SimDuration::from_secs(10));
            // ...and walks back: the first-generation shells get hit
            // again (the pool keeps two generations before evicting).
            net.move_node(gtt_net::NodeId::new(3), Position::new(75.0, 0.0));
            net.start_measurement();
            net.run_for(SimDuration::from_secs(20));
            net.finish_measurement();
        }
        assert_eq!(seq.asn(), par.asn());
        assert_eq!(seq.report(), par.report());
    }

    #[test]
    fn single_island_falls_back_to_sequential() {
        let topo = TopologyBuilder::new(40.0)
            .link_model(LinkModel::default())
            .nodes((0..5).map(|i| Position::new(f64::from(i) * 25.0, 0.0)))
            .build();
        let mut net = Network::builder(topo, EngineConfig::default())
            .root(gtt_net::NodeId::new(0))
            .scheduler_factory(|_, _| Box::new(MinimalSchedule::new(8)))
            .parallel_stepping()
            .build();
        net.run_for(SimDuration::from_secs(10));
        assert!(net.asn().raw() > 0);
    }
}
