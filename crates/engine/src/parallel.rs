//! Island-parallel stepping (the `parallel` feature).
//!
//! Nodes in different connected components of the *audibility* graph
//! ([`Topology::audibility_islands`](gtt_net::Topology::audibility_islands))
//! cannot exchange energy — not even as interference — so a stepping
//! window that contains no topology mutation can be resolved
//! island-by-island in any order, including concurrently. This module
//! exploits that: [`Network::run_until`] with the parallel switch on
//! splits the network into one full-length sub-`Network` per island,
//! runs each on its own scoped thread through the ordinary sequential
//! event core, and merges the results back in canonical island order
//! (islands sorted by smallest member id).
//!
//! # Why the reports are byte-identical
//!
//! Every source of nondeterminism is keyed by node, not by stepping
//! order:
//!
//! * link-error draws come from per-node streams
//!   ([`DrawStreams`](gtt_net::DrawStreams)) keyed by the drawing node,
//! * packet ids are origin-keyed (`origin << 48 | seq`), and
//! * the merge itself copies per-member state and unions the tracker in
//!   canonical order ([`PacketTracker::absorb_branch`]).
//!
//! Topology mutations (`move_node`, PRR overrides, `kill_node`,
//! `node_mut`) all happen *between* stepping calls, so islands are
//! stable for the whole window and are recomputed fresh on the next
//! call — a mid-run mobility hop that splits or merges islands is
//! handled by construction. `tests/step_equivalence.rs` pins parallel ==
//! sequential == naive-step byte-for-byte, including that case.

use std::collections::BinaryHeap;

use gtt_metrics::TrackerMark;
use gtt_net::NodeId;
use gtt_sim::SimTime;

use crate::network::{Network, ProbeEntry, SlotScratch, WakeEntry};
use crate::node::Node;

impl Network {
    /// [`Network::run_until`] resolving each partition island on its own
    /// scoped thread. Falls back to the sequential event core when the
    /// audibility graph has fewer than two islands.
    pub(crate) fn run_until_parallel(&mut self, end: SimTime) {
        let islands = self.medium.topology().audibility_islands();
        if islands.len() < 2 {
            self.run_until_event(end);
            return;
        }
        self.ensure_wake_queue();

        // Route pending wake-ups to the owning island's heap.
        let mut island_of = vec![0usize; self.nodes.len()];
        for (k, members) in islands.iter().enumerate() {
            for &m in members {
                island_of[m.index()] = k;
            }
        }
        let mut heaps: Vec<BinaryHeap<WakeEntry>> =
            islands.iter().map(|_| BinaryHeap::new()).collect();
        for entry in std::mem::take(&mut self.wake) {
            let std::cmp::Reverse((_, i)) = entry;
            heaps[island_of[i as usize]].push(entry);
        }

        let mark = self.tracker.mark();
        let mut subs: Vec<Network> = islands
            .iter()
            .zip(heaps)
            .map(|(members, wake)| self.split_island(members, wake))
            .collect();

        crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = subs
                .iter_mut()
                .map(|sub| scope.spawn(move |_| sub.run_until_event(end)))
                .collect();
            for handle in handles {
                handle.join().expect("island thread panicked");
            }
        })
        .expect("island scope failed");

        // Merge in canonical island order: islands are disjoint, so the
        // order only decides tracker union tie-breaks on corner cases
        // that disjointness already rules out — but fixing it keeps the
        // whole path a pure function of (seed, experiment).
        for (members, sub) in islands.iter().zip(subs) {
            debug_assert_eq!(sub.asn, {
                let slot = self.config.mac.slot_duration;
                gtt_mac::Asn::at_or_after(end, slot)
            });
            self.asn = sub.asn;
            self.merge_island(sub, members, &mark);
        }
    }

    /// Moves `members` out of `self` into a full-length sub-network
    /// (non-members are dead [`Node::placeholder`]s) that can step the
    /// island independently. `self` keeps placeholders in the members'
    /// slots until [`Network::merge_island`] swaps them back.
    fn split_island(&mut self, members: &[NodeId], wake: BinaryHeap<WakeEntry>) -> Network {
        let n = self.nodes.len();
        let mut nodes: Vec<Node> = (0..n)
            .map(|i| Node::placeholder(NodeId::from_index(i), &self.config))
            .collect();
        let mut wake_slot = vec![u64::MAX; n];
        let mut timer_wake = vec![u64::MAX; n];
        for &m in members {
            let i = m.index();
            std::mem::swap(&mut nodes[i], &mut self.nodes[i]);
            wake_slot[i] = self.wake_slot[i];
            timer_wake[i] = self.timer_wake[i];
        }
        Network {
            config: self.config.clone(),
            nodes,
            // The medium clone carries every node's draw-stream state;
            // the island only advances its own members' streams
            // (listener- and transmitter-keyed draws), which are copied
            // back at merge.
            medium: self.medium.clone(),
            tracker: self.tracker.clone(),
            asn: self.asn,
            measure_start: self.measure_start,
            measure_end: self.measure_end,
            snapshots: Vec::new(),
            wake,
            wake_init: true,
            wake_scratch: vec![0; n],
            // All-stale probe entries only cost the island one re-probe
            // per listener; resolution results are unaffected.
            probe_index: vec![ProbeEntry::NEVER; n],
            probe_stale: vec![true; n],
            wake_slot,
            timer_wake,
            scratch: SlotScratch::default(),
            naive: false,
            parallel: false,
        }
    }

    /// Folds a stepped island back into `self`: member nodes, wake
    /// state, per-member draw streams, and the tracker delta.
    fn merge_island(&mut self, mut sub: Network, members: &[NodeId], mark: &TrackerMark) {
        for &m in members {
            let i = m.index();
            std::mem::swap(&mut self.nodes[i], &mut sub.nodes[i]);
            self.wake_slot[i] = sub.wake_slot[i];
            self.timer_wake[i] = sub.timer_wake[i];
            // The island's probe entries were built against its own
            // wake heap; re-derive lazily in the parent.
            self.probe_stale[i] = true;
        }
        // Island heaps only ever contain member entries, so the union
        // of the merged heaps is exactly the parent's pending wake set.
        self.wake.extend(sub.wake.drain());
        self.medium.adopt_draws(&sub.medium, members);
        self.tracker.absorb_branch(sub.tracker, mark);
    }
}

#[cfg(test)]
mod tests {
    use gtt_net::{LinkModel, Position, TopologyBuilder};
    use gtt_sim::SimDuration;

    use crate::config::EngineConfig;
    use crate::minimal::MinimalSchedule;
    use crate::network::Network;

    /// Two 4-node stars 1 km apart: two islands.
    fn two_star_network(parallel: bool) -> Network {
        let topo = TopologyBuilder::new(40.0)
            .link_model(LinkModel::default())
            .nodes((0..4).map(|i| Position::new(f64::from(i) * 25.0, 0.0)))
            .nodes((0..4).map(|i| Position::new(1000.0 + f64::from(i) * 25.0, 0.0)))
            .build();
        let mut builder = Network::builder(topo, EngineConfig::default())
            .root(gtt_net::NodeId::new(0))
            .root(gtt_net::NodeId::new(4))
            .traffic_ppm(30.0)
            .scheduler_factory(|_, _| Box::new(MinimalSchedule::new(8)));
        if parallel {
            builder = builder.parallel_stepping();
        }
        builder.build()
    }

    #[test]
    fn parallel_run_matches_sequential_byte_for_byte() {
        let mut seq = two_star_network(false);
        let mut par = two_star_network(true);
        for net in [&mut seq, &mut par] {
            net.run_for(SimDuration::from_secs(30));
            net.start_measurement();
            net.run_for(SimDuration::from_secs(30));
            net.finish_measurement();
        }
        assert_eq!(seq.asn(), par.asn());
        assert_eq!(seq.report(), par.report());
    }

    #[test]
    fn set_parallel_toggles_at_runtime() {
        let mut seq = two_star_network(false);
        let mut par = two_star_network(false);
        par.set_parallel(true);
        assert!(par.parallel_enabled());
        seq.run_for(SimDuration::from_secs(20));
        par.run_for(SimDuration::from_secs(20));
        // Toggling back mid-run keeps the trajectory identical: the
        // switch changes wall-clock behavior only.
        par.set_parallel(false);
        for net in [&mut seq, &mut par] {
            net.start_measurement();
            net.run_for(SimDuration::from_secs(20));
            net.finish_measurement();
        }
        assert_eq!(seq.report(), par.report());
    }

    #[test]
    fn single_island_falls_back_to_sequential() {
        let topo = TopologyBuilder::new(40.0)
            .link_model(LinkModel::default())
            .nodes((0..5).map(|i| Position::new(f64::from(i) * 25.0, 0.0)))
            .build();
        let mut net = Network::builder(topo, EngineConfig::default())
            .root(gtt_net::NodeId::new(0))
            .scheduler_factory(|_, _| Box::new(MinimalSchedule::new(8)))
            .parallel_stepping()
            .build();
        net.run_for(SimDuration::from_secs(10));
        assert!(net.asn().raw() > 0);
    }
}
