//! Payload → wire mapping: the engine's abstract [`Payload`] frames
//! rendered as the IEEE 802.15.4 bytes of `gtt-frame`.
//!
//! Only the frame tap uses this — the simulation itself never reads
//! the encoded bytes — but the mapping is total and canonical, so a
//! pcap trace shows every frame the medium resolved, byte-exact:
//!
//! * `Payload::Eb` → enhanced beacon with the TSCH Synchronization IE
//!   (the ASN of the transmitting slot, join metric 0 — all nodes here
//!   share the ASN by construction), the Timeslot IE, and the GT-TSCH
//!   vendor IE carrying the EB piggyback,
//! * `Payload::Data` → data frame whose payload carries the
//!   origin-keyed packet id, generation time and hop count (the DSN is
//!   the id's low byte — per-origin monotone, stable across
//!   retransmissions, as the standard requires),
//! * `Payload::Dio`/`Dao`/`SixP` → data frames with the tagged control
//!   encodings (sequence number suppressed: the engine assigns these
//!   no per-origin counter).

use gtt_frame::{EbFields, WireFrame, WirePayload, BROADCAST};
use gtt_mac::Asn;
use gtt_net::{Dest, Frame};

use crate::payload::Payload;

/// Encodes `frame`, transmitted in slot `asn`, into `buf` (replacing
/// its contents — the tap reuses one buffer across records).
pub(crate) fn encode_frame(frame: &Frame<Payload>, asn: Asn, buf: &mut Vec<u8>) {
    let src = frame.src.raw();
    let dst = match frame.dst {
        Dest::Unicast(node) => node.raw(),
        Dest::Broadcast => BROADCAST,
    };
    let wire = match &frame.payload {
        Payload::Eb(info) => WireFrame::Eb {
            src,
            eb: EbFields {
                asn: asn.raw(),
                join_metric: 0,
                rx_channel: info.rx_channel,
                rx_free: info.rx_free,
            },
        },
        Payload::Data => WireFrame::Data {
            src,
            dst,
            seq: Some((frame.id.raw() & 0xff) as u8),
            payload: WirePayload::App {
                id: frame.id.raw(),
                generated_us: frame.generated_at.as_micros(),
                hops: frame.hops,
            },
        },
        Payload::Dio(dio) => WireFrame::Data {
            src,
            dst,
            seq: None,
            payload: WirePayload::Dio {
                dodag_root: dio.dodag_root.raw(),
                version: dio.version,
                rank: dio.rank.raw(),
                rx_free: dio.rx_free,
            },
        },
        Payload::Dao(dao) => WireFrame::Data {
            src,
            dst,
            seq: None,
            payload: WirePayload::Dao {
                child: dao.child.raw(),
                no_path: dao.no_path,
            },
        },
        Payload::SixP(msg) => WireFrame::Data {
            src,
            dst,
            seq: None,
            payload: WirePayload::SixP(msg.clone()),
        },
    };
    wire.encode(buf);
}

#[cfg(test)]
mod tests {
    use super::*;
    use gtt_net::{NodeId, PacketId};
    use gtt_sim::SimTime;

    #[test]
    fn every_payload_kind_encodes_and_round_trips() {
        let payloads = [
            Payload::Eb(crate::payload::EbInfo::with_rx_channel(3).with_rx_free(5)),
            Payload::Data,
            Payload::Dio(gtt_rpl::Dio {
                dodag_root: NodeId::new(0),
                version: 1,
                rank: gtt_rpl::Rank::new(512),
                rx_free: 4,
            }),
            Payload::Dao(gtt_rpl::Dao {
                child: NodeId::new(7),
                no_path: false,
            }),
            Payload::SixP(gtt_sixtop::SixpMessage::new(
                1,
                gtt_sixtop::SixpBody::AskChannelRequest,
            )),
        ];
        let mut buf = Vec::new();
        for payload in payloads {
            let dst = match payload.traffic_class() {
                Some(gtt_mac::TrafficClass::Eb) | Some(gtt_mac::TrafficClass::Broadcast) => {
                    Dest::Broadcast
                }
                _ => Dest::Unicast(NodeId::new(2)),
            };
            let id = if payload.is_data() {
                PacketId::new((7u64 << 48) | 41)
            } else {
                PacketId::new(u64::MAX)
            };
            let frame = Frame::new(id, NodeId::new(7), dst, SimTime::from_millis(90), payload);
            encode_frame(&frame, Asn::new(6000), &mut buf);
            let decoded = WireFrame::decode(&buf).expect("engine frames must decode");
            let mut again = Vec::new();
            decoded.encode(&mut again);
            assert_eq!(again, buf, "non-canonical encoding");
        }
    }

    #[test]
    fn data_dsn_is_the_packet_id_low_byte() {
        let frame = Frame::new(
            PacketId::new((3u64 << 48) | 0x1_2345),
            NodeId::new(3),
            Dest::Unicast(NodeId::new(0)),
            SimTime::ZERO,
            Payload::Data,
        );
        let mut buf = Vec::new();
        encode_frame(&frame, Asn::new(10), &mut buf);
        match WireFrame::decode(&buf).unwrap() {
            WireFrame::Data { seq, .. } => assert_eq!(seq, Some(0x45)),
            other => panic!("expected data frame, got {other:?}"),
        }
    }
}
