//! The scheduling-function seam.
//!
//! RFC 8480 leaves the *policy* of cell allocation to a Scheduling
//! Function. [`SchedulingFunction`] is that seam in this reproduction:
//! the engine owns the mechanism (timers, queues, the radio) and calls the
//! SF at well-defined points; the SF manipulates the node's schedule
//! through [`SfContext`] and requests message transmissions by pushing
//! [`OutgoingControl`] entries.

use gtt_mac::TschMac;
use gtt_net::{Dest, NodeId};
use gtt_rpl::RplNode;
use gtt_sim::{Pcg32, SimTime};
use gtt_sixtop::{SixtopEvent, SixtopLayer};

use crate::payload::{EbInfo, Payload};

/// A control message the scheduling function wants transmitted.
#[derive(Debug, Clone)]
pub struct OutgoingControl {
    /// Link-layer destination.
    pub to: Dest,
    /// Payload (typically [`Payload::SixP`]).
    pub payload: Payload,
}

/// Everything a scheduling function may touch while handling a hook.
///
/// The fields are disjoint borrows of the owning [`Node`](crate::Node),
/// so an SF can e.g. add cells to `mac` while reading `rpl` in the same
/// hook.
pub struct SfContext<'a> {
    /// The node's MAC: schedule, queues, link statistics.
    pub mac: &'a mut TschMac<Payload>,
    /// The node's routing state (read-only: routing belongs to RPL).
    pub rpl: &'a RplNode,
    /// The node's 6P layer, for starting transactions and building
    /// responses.
    pub sixtop: &'a mut SixtopLayer,
    /// Node-local randomness.
    pub rng: &'a mut Pcg32,
    /// Current simulation time.
    pub now: SimTime,
    /// The node's application packet generation rate (packets/minute);
    /// 0.0 for roots and silent nodes. Feeds the paper's `l_g` term.
    pub app_rate_ppm: f64,
    /// Messages to transmit after the hook returns.
    pub out: &'a mut Vec<OutgoingControl>,
}

impl SfContext<'_> {
    /// Convenience: queue a 6P message to `peer`.
    pub fn send_sixp(&mut self, peer: NodeId, msg: gtt_sixtop::SixpMessage) {
        self.out.push(OutgoingControl {
            to: Dest::Unicast(peer),
            payload: Payload::SixP(msg),
        });
    }
}

/// A TSCH scheduling function (6TiSCH SF).
///
/// Implemented by `gt-tsch` (the paper's contribution) and
/// `gtt-orchestra` (the autonomous baseline). All hooks except
/// [`SchedulingFunction::init`] have no-op defaults, because autonomous
/// schedulers like Orchestra need only react to parent changes.
///
/// `Send` is a supertrait so whole nodes can move across threads: the
/// island-parallel step path (the `parallel` feature) runs each radio
/// partition island on its own scoped thread. Schedulers are plain
/// owned state machines, so this costs implementations nothing.
pub trait SchedulingFunction: Send {
    /// Short name used in reports ("gt-tsch", "orchestra", …).
    fn name(&self) -> &'static str;

    /// Downcast hook so tests and diagnostics can reach
    /// scheduler-specific state (e.g. GT-TSCH's channel assignments).
    fn as_any(&self) -> &dyn std::any::Any;

    /// Called once at node start-up; installs the initial slotframes
    /// (broadcast/minimal cells so control traffic can flow).
    fn init(&mut self, ctx: &mut SfContext<'_>);

    /// Called every [`EngineConfig::sf_period`](crate::EngineConfig):
    /// GT-TSCH runs its load-balancing / game update here (§VI–VII).
    fn periodic(&mut self, ctx: &mut SfContext<'_>) {
        let _ = ctx;
    }

    /// The RPL parent changed (also fired on first join).
    fn on_parent_changed(&mut self, ctx: &mut SfContext<'_>, old: Option<NodeId>, new: NodeId) {
        let _ = (ctx, old, new);
    }

    /// An EB from `src` was received.
    fn on_eb(&mut self, ctx: &mut SfContext<'_>, src: NodeId, eb: &EbInfo) {
        let _ = (ctx, src, eb);
    }

    /// A DAO from `child` was processed by RPL (children set may have
    /// changed).
    fn on_dao(&mut self, ctx: &mut SfContext<'_>, child: NodeId, no_path: bool) {
        let _ = (ctx, child, no_path);
    }

    /// A 6P event fired: an incoming request to answer, or the completion
    /// or failure of a transaction this node initiated.
    fn on_sixtop_event(&mut self, ctx: &mut SfContext<'_>, event: &SixtopEvent) {
        let _ = (ctx, event);
    }

    /// The `l_rx` value to advertise in outgoing DIOs (paper §VII): the
    /// number of additional Rx cells this node could still grant its
    /// children. Orchestra returns 0 (it has no such concept).
    fn dio_rx_free(&self, mac: &TschMac<Payload>, rpl: &RplNode) -> u16 {
        let _ = (mac, rpl);
        0
    }

    /// The EB content to advertise (GT-TSCH piggybacks its children-to-me
    /// channel here).
    fn eb_info(&self, mac: &TschMac<Payload>, rpl: &RplNode) -> EbInfo {
        let _ = (mac, rpl);
        EbInfo::default()
    }

    /// One-line internal-state summary for diagnostics (shown by the
    /// harness's verbose mode; empty by default).
    fn debug_summary(&self) -> String {
        String::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The default hooks are callable no-ops (smoke check that the trait
    /// stays object-safe and default-implemented).
    struct Noop;

    impl SchedulingFunction for Noop {
        fn name(&self) -> &'static str {
            "noop"
        }

        fn as_any(&self) -> &dyn std::any::Any {
            self
        }

        fn init(&mut self, _ctx: &mut SfContext<'_>) {}
    }

    #[test]
    fn trait_is_object_safe() {
        let sf: Box<dyn SchedulingFunction> = Box::new(Noop);
        assert_eq!(sf.name(), "noop");
    }
}
