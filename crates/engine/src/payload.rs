//! The frame payload enum tying all protocol layers together.

use std::fmt;

use gtt_mac::TrafficClass;
use gtt_rpl::{Dao, Dio};
use gtt_sixtop::SixpMessage;

/// Contents of a TSCH Enhanced Beacon relevant to this reproduction.
///
/// Real EBs carry synchronization and join metadata; all nodes here share
/// the ASN by construction (see `DESIGN.md` §6), so the interesting part
/// is the GT-TSCH extension: the sender piggybacks the channel offset its
/// children must use to transmit to it (paper §III: "the channel that node
/// i can use for forwarding data to its parent p_i is piggybacked on TSCH
/// EB messages which are broadcast periodically by p_i").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EbInfo {
    /// Channel offset on which the sender receives from its children
    /// (`f_{·,sender}`); `None` when not yet allocated (or for schedulers
    /// without channel coordination, i.e. Orchestra).
    pub rx_channel: Option<u8>,
    /// The sender's free Rx capacity (`l_rx`). The paper carries this in
    /// a DIO option; this reproduction *additionally* piggybacks it on
    /// EBs because Trickle stretches DIO intervals to minutes while the
    /// load balancer needs capacity updates at the EB cadence (2 s) —
    /// see DESIGN.md §6.
    pub rx_free: u16,
}

impl EbInfo {
    /// An EB advertising the sender's children-to-sender channel.
    pub fn with_rx_channel(channel_offset: u8) -> Self {
        EbInfo {
            rx_channel: Some(channel_offset),
            rx_free: 0,
        }
    }

    /// Sets the advertised free Rx capacity.
    pub fn with_rx_free(mut self, rx_free: u16) -> Self {
        self.rx_free = rx_free;
        self
    }
}

/// What a frame carries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Payload {
    /// Application data flowing towards the DODAG root.
    Data,
    /// TSCH Enhanced Beacon.
    Eb(EbInfo),
    /// RPL DODAG Information Object.
    Dio(Dio),
    /// RPL Destination Advertisement Object.
    Dao(Dao),
    /// A 6P message.
    SixP(SixpMessage),
}

impl Payload {
    /// The MAC traffic class this payload travels under (`None` = data
    /// queue).
    pub fn traffic_class(&self) -> Option<TrafficClass> {
        match self {
            Payload::Data => None,
            Payload::Eb(_) => Some(TrafficClass::Eb),
            Payload::Dio(_) => Some(TrafficClass::Broadcast),
            Payload::Dao(_) | Payload::SixP(_) => Some(TrafficClass::ControlUnicast),
        }
    }

    /// True for application data.
    pub fn is_data(&self) -> bool {
        matches!(self, Payload::Data)
    }
}

impl fmt::Display for Payload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Payload::Data => f.write_str("data"),
            Payload::Eb(eb) => write!(f, "eb(rx_ch={:?})", eb.rx_channel),
            Payload::Dio(d) => write!(f, "{d}"),
            Payload::Dao(d) => write!(f, "{d}"),
            Payload::SixP(m) => write!(f, "{m}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gtt_net::NodeId;
    use gtt_rpl::Rank;

    #[test]
    fn traffic_class_mapping() {
        assert_eq!(Payload::Data.traffic_class(), None);
        assert_eq!(
            Payload::Eb(EbInfo::default()).traffic_class(),
            Some(TrafficClass::Eb)
        );
        assert_eq!(
            Payload::Dio(Dio::new(NodeId::new(0), 1, Rank::ROOT)).traffic_class(),
            Some(TrafficClass::Broadcast)
        );
        assert_eq!(
            Payload::Dao(Dao::announce(NodeId::new(2))).traffic_class(),
            Some(TrafficClass::ControlUnicast)
        );
    }

    #[test]
    fn data_predicate() {
        assert!(Payload::Data.is_data());
        assert!(!Payload::Eb(EbInfo::with_rx_channel(3)).is_data());
    }

    #[test]
    fn eb_info_builder() {
        assert_eq!(EbInfo::with_rx_channel(5).rx_channel, Some(5));
        assert_eq!(EbInfo::default().rx_channel, None);
    }
}
