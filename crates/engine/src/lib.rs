//! # gtt-engine — node runtime and slot-synchronous network engine
//!
//! This crate composes the substrates ([`gtt_mac`], [`gtt_rpl`],
//! [`gtt_sixtop`], [`gtt_net`]) into runnable nodes and networks. It is
//! the moral equivalent of Contiki-NG + Cooja in the paper's evaluation:
//! each [`Node`] bundles a TSCH MAC, an RPL instance, a 6P layer, an
//! application traffic source and a pluggable [`SchedulingFunction`]; a
//! [`Network`] steps all nodes through timeslots, resolves the radio
//! medium, dispatches received frames up the stack and collects the
//! paper's six metrics into a [`NetworkReport`].
//!
//! The [`SchedulingFunction`] trait is the seam the paper's contribution
//! plugs into: `gt-tsch` (the game-theoretic scheduler) and
//! `gtt-orchestra` (the baseline) both implement it.
//!
//! # Example
//!
//! A two-node network with a trivial always-shared schedule:
//!
//! ```
//! use gtt_engine::{EngineConfig, MinimalSchedule, Network};
//! use gtt_net::{LinkModel, Position, TopologyBuilder};
//!
//! let topo = TopologyBuilder::new(50.0)
//!     .link_model(LinkModel::Perfect)
//!     .node(Position::new(0.0, 0.0))
//!     .node(Position::new(20.0, 0.0))
//!     .build();
//! let mut net = Network::builder(topo, EngineConfig::default())
//!     .root(gtt_net::NodeId::new(0))
//!     .scheduler_factory(|_, _| Box::new(MinimalSchedule::new(8)))
//!     .build();
//! net.run_for(gtt_sim::SimDuration::from_secs(30));
//! assert!(net.node(gtt_net::NodeId::new(1)).rpl.is_joined());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod minimal;
pub mod network;
pub mod node;
#[cfg(feature = "parallel")]
mod parallel;
pub mod payload;
pub mod report;
pub mod scheduler;
mod wire;

pub use config::EngineConfig;
pub use minimal::MinimalSchedule;
pub use network::{Network, NetworkBuilder};
pub use node::{AppTraffic, Node};
pub use payload::{EbInfo, Payload};
pub use report::{NetworkReport, NodeSummary};
pub use scheduler::{OutgoingControl, SchedulingFunction, SfContext};
