//! The slot-synchronous network engine.

use gtt_mac::{Asn, MacCounters, SlotAction, SlotResult, TschMac};
use gtt_metrics::PacketTracker;
use gtt_net::{Dest, Frame, Listener, NodeId, PacketId, RadioMedium, Topology, Transmission};
use gtt_rpl::{RplConfig, RplNode};
use gtt_sim::{Pcg32, SimDuration, SimTime};
use gtt_sixtop::SixtopLayer;

use crate::config::EngineConfig;
use crate::node::{AppTraffic, Node, UpkeepOutput};
use crate::payload::Payload;
use crate::report::NetworkReport;
use crate::scheduler::SchedulingFunction;

/// Per-node counter snapshot taken when measurement starts, so reports
/// cover only the measurement window.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct Snapshot {
    pub counters: MacCounters,
    pub queue_loss: u64,
    pub routing_drops: u64,
}

/// A simulated TSCH network.
///
/// Construct with [`Network::builder`], drive with [`Network::run_for`] /
/// [`Network::run_slots`], bracket the steady state with
/// [`Network::start_measurement`] / [`Network::finish_measurement`], then
/// read the [`NetworkReport`].
pub struct Network {
    pub(crate) config: EngineConfig,
    pub(crate) nodes: Vec<Node>,
    pub(crate) medium: RadioMedium,
    pub(crate) tracker: PacketTracker,
    pub(crate) asn: Asn,
    packet_counter: u64,
    pub(crate) measure_start: Option<SimTime>,
    pub(crate) measure_end: Option<SimTime>,
    pub(crate) snapshots: Vec<Snapshot>,
}

/// Builder for [`Network`] (C-BUILDER).
pub struct NetworkBuilder {
    topology: Topology,
    config: EngineConfig,
    roots: Vec<NodeId>,
    traffic_ppm: Option<f64>,
    factory: Option<SchedulerFactory>,
}

/// Produces one scheduling function per node; called with the node id
/// and whether the node is a DODAG root.
pub type SchedulerFactory = Box<dyn Fn(NodeId, bool) -> Box<dyn SchedulingFunction>>;

impl Network {
    /// Starts building a network over `topology`.
    pub fn builder(topology: Topology, config: EngineConfig) -> NetworkBuilder {
        NetworkBuilder {
            topology,
            config,
            roots: Vec::new(),
            traffic_ppm: None,
            factory: None,
        }
    }

    /// Current simulation time (start of the upcoming slot).
    pub fn now(&self) -> SimTime {
        self.asn.start_time(self.config.mac.slot_duration)
    }

    /// The upcoming absolute slot number.
    pub fn asn(&self) -> Asn {
        self.asn
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Immutable access to a node.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Mutable access to a node (used by tests to inject faults).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn node_mut(&mut self, id: NodeId) -> &mut Node {
        &mut self.nodes[id.index()]
    }

    /// All nodes, in id order.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// The end-to-end packet tracker.
    pub fn tracker(&self) -> &PacketTracker {
        &self.tracker
    }

    /// Fraction of non-root nodes that joined the DODAG.
    pub fn join_ratio(&self) -> f64 {
        let non_roots: Vec<_> = self.nodes.iter().filter(|n| !n.rpl.is_root()).collect();
        if non_roots.is_empty() {
            return 1.0;
        }
        non_roots.iter().filter(|n| n.rpl.is_joined()).count() as f64 / non_roots.len() as f64
    }

    /// Simulates one timeslot.
    pub fn step(&mut self) {
        let now = self.now();

        // Phase 1: timers, control plane, application.
        for i in 0..self.nodes.len() {
            if !self.nodes[i].alive {
                continue;
            }
            let output = self.nodes[i].upkeep(now);
            self.apply_upkeep(i, output, now);
        }

        // Phase 2: every MAC plans its slot.
        let n = self.nodes.len();
        let mut transmissions: Vec<Transmission<Payload>> = Vec::new();
        let mut listeners: Vec<Listener> = Vec::new();
        let mut tx_of: Vec<Option<usize>> = vec![None; n];
        let mut listen_of: Vec<Option<usize>> = vec![None; n];
        for (i, node) in self.nodes.iter_mut().enumerate() {
            if !node.alive {
                continue;
            }
            match node.mac.plan_slot(self.asn) {
                SlotAction::Sleep => {}
                SlotAction::Transmit { channel, frame, .. } => {
                    tx_of[i] = Some(transmissions.len());
                    transmissions.push(Transmission { channel, frame });
                }
                SlotAction::Listen { channel, .. } => {
                    listen_of[i] = Some(listeners.len());
                    listeners.push(Listener {
                        node: node.mac.id(),
                        channel,
                    });
                }
            }
        }

        // Phase 3: the medium resolves all concurrent activity.
        let outcomes = self.medium.resolve_slot(transmissions, listeners);

        // Phase 4: feed results back; deliver decoded frames upward.
        for i in 0..n {
            let result = if let Some(t) = tx_of[i] {
                SlotResult::Transmitted {
                    acked: outcomes.acked[t],
                }
            } else if let Some(l) = listen_of[i] {
                SlotResult::Listened(outcomes.rx[l].1.clone())
            } else {
                SlotResult::Slept
            };
            if let Some(frame) = self.nodes[i].mac.finish_slot(result) {
                self.deliver(i, frame, now);
            }
        }

        self.asn = self.asn.next();
    }

    /// Runs `slots` timeslots.
    pub fn run_slots(&mut self, slots: u64) {
        for _ in 0..slots {
            self.step();
        }
    }

    /// Runs for (at least) the given simulated duration.
    pub fn run_for(&mut self, duration: SimDuration) {
        let end = self.now() + duration;
        while self.now() < end {
            self.step();
        }
    }

    /// Begins the measurement window: packets generated from now on are
    /// tracked and per-node counters are snapshotted.
    pub fn start_measurement(&mut self) {
        let now = self.now();
        self.measure_start = Some(now);
        self.measure_end = None;
        self.tracker.set_window(now, SimTime::MAX);
        self.snapshots = self
            .nodes
            .iter()
            .map(|node| Snapshot {
                counters: node.mac.counters(),
                queue_loss: node.mac.queue_loss(),
                routing_drops: node.routing_drops,
            })
            .collect();
    }

    /// Ends the measurement window.
    ///
    /// # Panics
    ///
    /// Panics if [`Network::start_measurement`] was not called.
    pub fn finish_measurement(&mut self) {
        let start = self
            .measure_start
            .expect("start_measurement must be called first");
        let now = self.now();
        self.measure_end = Some(now);
        self.tracker.set_window(start, now);
    }

    /// Produces the measurement report.
    ///
    /// # Panics
    ///
    /// Panics unless measurement was started and finished.
    pub fn report(&self) -> NetworkReport {
        NetworkReport::collect(self)
    }

    /// Fault injection: silences `node` from the next slot on (crash,
    /// battery death). Dead nodes keep their state for post-mortem
    /// inspection but neither transmit, listen nor run timers.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn kill_node(&mut self, node: NodeId) {
        self.nodes[node.index()].alive = false;
    }

    /// Fault injection: overrides the PRR of the directed link `a → b`
    /// from the next slot on.
    ///
    /// # Panics
    ///
    /// Panics if `prr` is outside `[0, 1]`.
    pub fn set_link_prr(&mut self, a: NodeId, b: NodeId, prr: f64) {
        self.medium.topology_mut().set_link_prr(a, b, prr);
    }

    /// Fault injection: symmetric variant of
    /// [`Network::set_link_prr`].
    pub fn set_link_prr_symmetric(&mut self, a: NodeId, b: NodeId, prr: f64) {
        self.set_link_prr(a, b, prr);
        self.set_link_prr(b, a, prr);
    }

    fn apply_upkeep(&mut self, i: usize, output: UpkeepOutput, now: SimTime) {
        // Scheduler reactions to parent changes.
        for (old, new) in output.parent_changes {
            self.nodes[i].with_scheduler(now, |sf, ctx| sf.on_parent_changed(ctx, old, new));
        }
        // Application packets.
        for _ in 0..output.generated_packets {
            let Some(parent) = self.nodes[i].rpl.parent() else {
                continue;
            };
            let id = PacketId::new(self.packet_counter);
            self.packet_counter += 1;
            let origin = self.nodes[i].id();
            self.tracker.record_generated(id, origin, now);
            self.nodes[i].generated_total += 1;
            let frame = Frame::new(id, origin, Dest::Unicast(parent), now, Payload::Data);
            // Overflow is counted by the queue itself (queue loss).
            let _ = self.nodes[i].mac.enqueue_data(frame);
        }
    }

    /// Dispatches a frame the MAC accepted to the right upper layer.
    fn deliver(&mut self, i: usize, frame: Frame<Payload>, now: SimTime) {
        match frame.payload.clone() {
            Payload::Data => {
                if self.nodes[i].rpl.is_root() {
                    // +1: `hops` counts completed forwards; this reception
                    // is one more link-layer hop.
                    self.tracker
                        .record_delivered(frame.id, now, frame.hops.saturating_add(1));
                } else if let Some(parent) = self.nodes[i].rpl.parent() {
                    let fwd = frame.forwarded(self.nodes[i].id(), Dest::Unicast(parent));
                    let _ = self.nodes[i].mac.enqueue_data(fwd);
                } else {
                    self.nodes[i].routing_drops += 1;
                }
            }
            Payload::Eb(info) => {
                self.nodes[i].with_scheduler(now, |sf, ctx| sf.on_eb(ctx, frame.src, &info));
            }
            Payload::Dio(dio) => {
                let etx = self.nodes[i].mac.etx(frame.src);
                let actions = self.nodes[i].rpl.handle_dio(frame.src, dio, etx, now);
                let mut out = UpkeepOutput::default();
                self.nodes[i].process_rpl_actions(actions, now, &mut out);
                for (old, new) in out.parent_changes {
                    self.nodes[i]
                        .with_scheduler(now, |sf, ctx| sf.on_parent_changed(ctx, old, new));
                }
            }
            Payload::Dao(dao) => {
                self.nodes[i].rpl.handle_dao(frame.src, dao, now);
                self.nodes[i].with_scheduler(now, |sf, ctx| sf.on_dao(ctx, dao.child, dao.no_path));
            }
            Payload::SixP(msg) => {
                if let Some(event) = self.nodes[i].sixtop.handle_message(frame.src, msg) {
                    self.nodes[i].dispatch_sixtop_event(event, now);
                }
            }
        }
    }
}

impl NetworkBuilder {
    /// Declares `id` a DODAG root.
    pub fn root(mut self, id: NodeId) -> Self {
        self.roots.push(id);
        self
    }

    /// Declares several roots.
    pub fn roots<I: IntoIterator<Item = NodeId>>(mut self, ids: I) -> Self {
        self.roots.extend(ids);
        self
    }

    /// Gives every non-root node a CBR source of `ppm` packets/minute.
    pub fn traffic_ppm(mut self, ppm: f64) -> Self {
        self.traffic_ppm = Some(ppm);
        self
    }

    /// Sets the scheduling-function factory, called once per node with
    /// `(id, is_root)`.
    pub fn scheduler_factory<F>(mut self, f: F) -> Self
    where
        F: Fn(NodeId, bool) -> Box<dyn SchedulingFunction> + 'static,
    {
        self.factory = Some(Box::new(f));
        self
    }

    /// Builds the network and runs every scheduler's `init` hook.
    ///
    /// # Panics
    ///
    /// Panics when no roots or no factory were configured, when a root id
    /// is out of range, or when the configuration is invalid.
    pub fn build(self) -> Network {
        self.config.validate();
        assert!(!self.roots.is_empty(), "a network needs at least one root");
        assert!(
            self.factory.is_some(),
            "a scheduler factory must be configured"
        );
        let factory = self.factory.expect("checked above");
        for r in &self.roots {
            assert!(
                r.index() < self.topology.len(),
                "root {r} outside the topology"
            );
        }

        let mut master = Pcg32::new(self.config.seed);
        let medium_rng = master.split();
        let n = self.topology.len();

        let mut nodes = Vec::with_capacity(n);
        for i in 0..n {
            let id = NodeId::from_index(i);
            let is_root = self.roots.contains(&id);
            let mut rng = master.split();
            let mac = TschMac::new(
                id,
                self.config.mac.clone(),
                self.config.hopping.clone(),
                rng.split(),
            );
            let rpl_cfg: RplConfig = self.config.rpl.clone();
            let rpl = if is_root {
                RplNode::new_root(id, rpl_cfg, SimTime::ZERO)
            } else {
                RplNode::new(id, rpl_cfg)
            };
            let sixtop = SixtopLayer::new(id, self.config.sixtop.clone());
            let scheduler = factory(id, is_root);
            let mut node = Node::new(mac, rpl, sixtop, scheduler, rng);

            // Stagger periodic timers with per-node phase jitter so the
            // whole network does not beacon in the same slot.
            let jitter = |rng: &mut Pcg32, period: SimDuration| {
                SimDuration::from_micros(
                    rng.gen_range_u32(0, period.as_micros().max(2) as u32) as u64
                )
            };
            node.eb_period = self.config.eb_period;
            let eb_phase = jitter(&mut node.rng, self.config.eb_period);
            node.eb_timer.arm(SimTime::ZERO + eb_phase);
            let rpl_phase = jitter(&mut node.rng, self.config.rpl_poll_period);
            node.rpl_poll_timer
                .arm_periodic(SimTime::ZERO + rpl_phase, self.config.rpl_poll_period);
            let sf_phase = jitter(&mut node.rng, self.config.sf_period);
            node.sf_timer
                .arm_periodic(SimTime::ZERO + sf_phase, self.config.sf_period);

            if let Some(ppm) = self.traffic_ppm {
                if !is_root {
                    node.app = Some(AppTraffic::new(ppm, &mut node.rng));
                }
            }
            nodes.push(node);
        }

        let mut net = Network {
            config: self.config,
            nodes,
            medium: RadioMedium::new(self.topology, medium_rng),
            tracker: PacketTracker::new(),
            asn: Asn::ZERO,
            packet_counter: 0,
            measure_start: None,
            measure_end: None,
            snapshots: Vec::new(),
        };
        for i in 0..net.nodes.len() {
            net.nodes[i].with_scheduler(SimTime::ZERO, |sf, ctx| sf.init(ctx));
        }
        net
    }
}
