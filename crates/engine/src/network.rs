//! The event-driven network engine.
//!
//! The engine is slot-synchronous in *semantics* — all radio activity is
//! resolved per TSCH timeslot — but event-driven in *execution*: a
//! binary-heap wake-up queue (keyed by raw `(ASN, node index)`; same-slot
//! entries are popped together, then sorted and deduplicated into node-id
//! order) merges each MAC's transmission opportunities
//! ([`next_radio_wake`](TschMac::next_radio_wake)) with the node's timer
//! deadlines, and the clock jumps straight to the next slot in which
//! anything can *happen*. Idle listening is not an event: a scheduled
//! listen with nothing audible resolves to `Idle` without touching the
//! medium RNG or any state beyond two duty-cycle counters, so
//! single-slotframe nodes (*passive listeners*) are not woken for their
//! Rx slots at all. Instead, each planned transmission wakes exactly the
//! audible neighbors listening on its channel
//! ([`Topology::audible_neighbors`] × [`TschMac::listen_channel_at`]),
//! and every skipped slot's sleeps *and* idle listens are accounted
//! lazily and exactly ([`TschMac::count_listen_slots`]). Multi-slotframe
//! schedules (Orchestra) are covered by the same machinery: the MAC's
//! cyclic-union Rx index merges the per-frame wake chains by exact
//! cyclic arithmetic, so Orchestra nodes sleep through inaudible Rx
//! slots just like single-slotframe nodes. The control plane is fully
//! deadline-driven — there is no periodic RPL poll; wake-ups are
//! exclusively tx opportunities, audible listens and exact layer
//! deadlines. The pre-refactor exhaustive loop survives behind the
//! `naive-step` feature (and in unit tests) as an oracle: both cores
//! must produce byte-identical [`NetworkReport`]s for the same seed.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use gtt_mac::{Asn, MacCounters, SlotAction, SlotResult, TschMac};
use gtt_metrics::PacketTracker;
use gtt_net::{
    Dest, Frame, Listener, NodeId, PacketId, RadioMedium, SlotOutcomes, Topology, Transmission,
};
use gtt_rpl::{RplConfig, RplNode};
use gtt_sim::{Pcg32, SimDuration, SimTime};
use gtt_sixtop::SixtopLayer;

use crate::config::EngineConfig;
use crate::node::{AppTraffic, Node, UpkeepOutput};
use crate::payload::Payload;
use crate::report::NetworkReport;
use crate::scheduler::SchedulingFunction;

/// Per-node counter snapshot taken when measurement starts, so reports
/// cover only the measurement window.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct Snapshot {
    pub counters: MacCounters,
    pub queue_loss: u64,
    pub routing_drops: u64,
}

/// One entry of the engine's wake-up min-heap: `(wake ASN, node index)`.
///
/// Keyed directly by slot number — the slot clock *is* simulation time
/// (`SimTime = ASN × slot_duration`), and raw `u64` keys keep the heap's
/// compare/sift hot path free of time-unit conversions. Duplicate and
/// stale entries are allowed (they cost one pop and a dedup); correctness
/// only requires that no needed wake-up is *missing*.
pub(crate) type WakeEntry = Reverse<(u64, u32)>;

/// A due node's planned radio action before listener indices are known.
#[derive(Debug, Clone, Copy)]
enum Pre {
    /// Transmitting; index into the slot's transmission vec.
    Tx(usize),
    /// Listening on this channel.
    Listen(gtt_net::PhysicalChannel),
    /// Radio off.
    Sleep,
}

/// A processed node's action keyed into the medium's outcome vectors.
#[derive(Debug, Clone, Copy)]
enum Planned {
    Tx(usize),
    /// A due node's scheduled listen.
    Listen(usize),
    /// A probed passive listener's listen (no plan/finish round-trip).
    ProbedListen(usize),
    Sleep,
}

/// One row of the engine's dense listener-probe index: the node's next
/// listen slot and the channel offset it will use there (physical
/// channel = shared hopping sequence at that slot). Rows go stale when
/// their node is *processed* — the only way its schedule can change —
/// and are recomputed lazily on the next probe; until then every probe
/// of a sleeping peer is an O(1) array read that never touches the node.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ProbeEntry {
    /// Raw ASN of the next listen ([`u64::MAX`] = never listens).
    next: u64,
    /// Channel offset of that listen.
    offset: gtt_mac::ChannelOffset,
}

impl ProbeEntry {
    pub(crate) const NEVER: ProbeEntry = ProbeEntry {
        next: u64::MAX,
        offset: gtt_mac::ChannelOffset::new(0),
    };
}

/// Per-slot working memory, reused across slots so the hot loop does not
/// allocate. Taken out of the [`Network`] for the duration of a slot
/// (`std::mem::take`) to keep the borrow checker out of the hot path.
#[derive(Debug, Default)]
pub(crate) struct SlotScratch {
    /// Due node indices (sorted, deduplicated, alive).
    due: Vec<usize>,
    /// Planned actions of the due nodes, in node order.
    pre_due: Vec<(usize, Pre)>,
    /// Probed passive listeners and their listen channels (sorted by
    /// node index).
    extras: Vec<(usize, gtt_net::PhysicalChannel)>,
    /// Merged actions of every processed node, in node order.
    planned: Vec<(usize, Planned)>,
    /// Processed nodes whose wake-up chain must be re-queued.
    resched: Vec<usize>,
    /// The slot's transmissions, in due (= node) order.
    transmissions: Vec<Transmission<Payload>>,
    /// The slot's listeners, in node order.
    listeners: Vec<Listener>,
    /// The medium's per-listener / per-transmission outcomes.
    outcomes: SlotOutcomes<Payload>,
    /// Schedule versions of the due nodes (aligned with `due`), captured
    /// before any processing so phase 5 can invalidate exactly the
    /// probe-index rows whose schedule actually changed.
    due_versions: Vec<u64>,
}

/// A simulated TSCH network.
///
/// Construct with [`Network::builder`], drive with [`Network::run_for`] /
/// [`Network::run_slots`], bracket the steady state with
/// [`Network::start_measurement`] / [`Network::finish_measurement`], then
/// read the [`NetworkReport`].
pub struct Network {
    pub(crate) config: EngineConfig,
    pub(crate) nodes: Vec<Node>,
    pub(crate) medium: RadioMedium,
    pub(crate) tracker: PacketTracker,
    pub(crate) asn: Asn,
    pub(crate) measure_start: Option<SimTime>,
    pub(crate) measure_end: Option<SimTime>,
    pub(crate) snapshots: Vec<Snapshot>,
    /// The event-driven core's clock: pending per-node wake-ups.
    pub(crate) wake: BinaryHeap<WakeEntry>,
    /// Whether the wake queue has been seeded (done lazily on the first
    /// stepping call, after scheduler `init` hooks installed cells).
    pub(crate) wake_init: bool,
    /// Per-node "due or already probed this slot" stamp (`ASN + 1`; 0 =
    /// never) for the listener probe — stamping instead of clearing
    /// makes the per-slot reset free.
    pub(crate) wake_scratch: Vec<u64>,
    /// Dense listener-probe index, one [`ProbeEntry`] per node.
    pub(crate) probe_index: Vec<ProbeEntry>,
    /// Per-node staleness of `probe_index` (set when the node is
    /// processed, killed or externally mutated).
    pub(crate) probe_stale: Vec<bool>,
    /// Per-node authoritative wake slot: the raw ASN of the *latest*
    /// entry pushed for the node (`u64::MAX` = none). Every state change
    /// that can move a node's wake re-pushes and updates this, so a
    /// popped entry whose ASN differs is provably superseded and is
    /// dropped in O(1) — without this, deadlines that move later (a DIO
    /// refreshing the earliest-expiry neighbor, an EB re-arm) leave a
    /// trail of stale wake-ups that each cost a full no-op upkeep.
    pub(crate) wake_slot: Vec<u64>,
    /// Per-node slot of the *timer* component of the last scheduled
    /// wake (`u64::MAX` = no timer pending). Deadlines only move while a
    /// node is processed, and every processing reschedules, so a wake
    /// strictly before this slot is a pure radio wake-up whose upkeep
    /// pass is a provable no-op — skipped without touching the node.
    pub(crate) timer_wake: Vec<u64>,
    /// Per-slot vectors, reused across slots.
    pub(crate) scratch: SlotScratch,
    /// Installed frame tap plus its reusable encode buffer (`None` =
    /// tracing off; the slot path then pays exactly one is-some check
    /// and allocates nothing — pinned by `tests/zero_alloc.rs`).
    pub(crate) tap: Option<TapState>,
    /// Use the exhaustive per-slot oracle loop instead of the wake queue.
    pub(crate) naive: bool,
    /// Resolve radio-disjoint partition islands on scoped threads inside
    /// [`Network::run_until`] (see `parallel.rs`); reports are
    /// byte-identical either way.
    #[cfg(feature = "parallel")]
    pub(crate) parallel: bool,
    /// Retained island sub-network shells, keyed by island membership,
    /// so consecutive stepping windows over a stable partition reuse
    /// their allocations instead of rebuilding n placeholders per island
    /// per window (see `parallel.rs`). Pure scratch: never observable in
    /// reports.
    #[cfg(feature = "parallel")]
    pub(crate) island_pool: crate::parallel::IslandPool,
}

/// An installed [`FrameTap`](gtt_net::FrameTap) and the wire-encoding
/// buffer it reuses across records (grown once to the largest frame,
/// then allocation-free in steady state).
pub(crate) struct TapState {
    sink: Box<dyn gtt_net::FrameTap>,
    buf: Vec<u8>,
}

/// Builder for [`Network`] (C-BUILDER).
pub struct NetworkBuilder {
    topology: Topology,
    config: EngineConfig,
    roots: Vec<NodeId>,
    traffic_ppm: Option<f64>,
    factory: Option<SchedulerFactory>,
    naive: bool,
    #[cfg(feature = "parallel")]
    parallel: bool,
}

/// Produces one scheduling function per node; called with the node id
/// and whether the node is a DODAG root.
pub type SchedulerFactory = Box<dyn Fn(NodeId, bool) -> Box<dyn SchedulingFunction>>;

impl Network {
    /// Starts building a network over `topology`.
    pub fn builder(topology: Topology, config: EngineConfig) -> NetworkBuilder {
        NetworkBuilder {
            topology,
            config,
            roots: Vec::new(),
            traffic_ppm: None,
            factory: None,
            naive: false,
            #[cfg(feature = "parallel")]
            parallel: false,
        }
    }

    /// Current simulation time (start of the upcoming slot).
    pub fn now(&self) -> SimTime {
        self.asn.start_time(self.config.mac.slot_duration)
    }

    /// The upcoming absolute slot number.
    pub fn asn(&self) -> Asn {
        self.asn
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Immutable access to a node.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Mutable access to a node (used by tests to inject faults).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn node_mut(&mut self, id: NodeId) -> &mut Node {
        // External mutation can invalidate a sleeping node's cached
        // wake-up (e.g. a test enqueues traffic behind the engine's
        // back); wake it in the current slot so the event core
        // re-evaluates. Spurious wake-ups are harmless — the node just
        // plans an ordinary (possibly sleeping) slot. Settle its lazy
        // accounting first: the skipped range up to now must be counted
        // against the *pre-mutation* schedule.
        if self.wake_init {
            if self.nodes[id.index()].alive {
                self.settle_node(id.index(), self.asn.raw());
                self.nodes[id.index()].mac.settle_backoff_to(self.asn.raw());
            }
            self.wake_slot[id.index()] = self.asn.raw();
            self.timer_wake[id.index()] = self.asn.raw();
            self.wake.push(Reverse((self.asn.raw(), id.index() as u32)));
        }
        self.probe_stale[id.index()] = true;
        &mut self.nodes[id.index()]
    }

    /// All nodes, in id order.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// The network topology (read-only; mutate through the
    /// fault-injection methods like [`Network::set_link_prr`] so the
    /// engine can keep its bookkeeping consistent).
    pub fn topology(&self) -> &Topology {
        self.medium.topology()
    }

    /// The end-to-end packet tracker.
    pub fn tracker(&self) -> &PacketTracker {
        &self.tracker
    }

    /// Fraction of non-root nodes that joined the DODAG.
    pub fn join_ratio(&self) -> f64 {
        let non_roots: Vec<_> = self.nodes.iter().filter(|n| !n.rpl.is_root()).collect();
        if non_roots.is_empty() {
            return 1.0;
        }
        non_roots.iter().filter(|n| n.rpl.is_joined()).count() as f64 / non_roots.len() as f64
    }

    /// Simulates one timeslot.
    ///
    /// In the event-driven core this processes only the nodes whose
    /// wake-up is due in the current slot (every other node provably
    /// sleeps); under the `naive-step` oracle it runs the exhaustive
    /// per-node loop. Either way the ASN advances by exactly one.
    pub fn step(&mut self) {
        if self.naive {
            self.step_naive();
            return;
        }
        self.ensure_wake_queue();
        let mut s = std::mem::take(&mut self.scratch);
        self.fill_due(&mut s.due);
        if !s.due.is_empty() {
            self.process_slot(&mut s);
            self.asn = self.asn.next();
            for &i in &s.resched {
                self.schedule_node_wake(i);
            }
        } else {
            self.asn = self.asn.next();
        }
        self.scratch = s;
        // Single-step callers observe counters between slots; keep the
        // lazily-accounted sleep/idle-listen slots exact at this
        // granularity.
        self.sync_accounting();
    }

    /// Runs until simulated time reaches `end`, skipping directly from
    /// wake-up to wake-up.
    ///
    /// Equivalent to `while self.now() < end { self.step() }`, but slots
    /// in which every node sleeps cost nothing: the ASN jumps to the next
    /// slot in which at least one node transmits, listens or runs a due
    /// timer. Ends with `now() >= end` on the first slot boundary at or
    /// after `end`, exactly like the slot-by-slot loop.
    pub fn run_until(&mut self, end: SimTime) {
        if self.naive {
            while self.now() < end {
                self.step_naive();
            }
            return;
        }
        // A tap wants one global, slot-ordered record stream; island
        // threads would interleave it. Reports are byte-identical on
        // either core (see DETERMINISM.md), so tracing simply takes the
        // sequential path while installed.
        #[cfg(feature = "parallel")]
        if self.parallel && self.tap.is_none() {
            self.run_until_parallel(end);
            return;
        }
        self.run_until_event(end);
    }

    /// Installs (or, with `None`, removes) the frame tap: an observer
    /// driven once per resolved transmission with the frame's encoded
    /// IEEE 802.15.4 bytes and slot metadata (see
    /// [`gtt_net::FrameTap`]).
    ///
    /// Taps are provably inert: the report is byte-identical with the
    /// tap installed, absent, or swapped, and with no tap installed the
    /// slot path performs no extra work beyond one pointer check. While
    /// a tap is installed, [`Network::run_until`] uses the sequential
    /// event core even if island-parallel stepping is enabled, so the
    /// record stream is globally slot-ordered; the removed tap's
    /// records are a pure function of the experiment either way.
    pub fn set_frame_tap(&mut self, tap: Option<Box<dyn gtt_net::FrameTap>>) {
        self.tap = tap.map(|sink| TapState {
            sink,
            buf: Vec::new(),
        });
    }

    /// Whether a frame tap is currently installed.
    pub fn frame_tap_installed(&self) -> bool {
        self.tap.is_some()
    }

    /// Feeds every transmission of the just-resolved slot to the tap,
    /// in transmitter-id order (the transmission vec is built in node
    /// order). Off the hot path: callers check `tap.is_some()` first.
    #[cold]
    fn drive_tap(&mut self, transmissions: &[Transmission<Payload>], acked: &[Option<bool>]) {
        let asn = self.asn;
        let time = self.now();
        let Some(tap) = self.tap.as_mut() else {
            return;
        };
        for (t, tx) in transmissions.iter().enumerate() {
            crate::wire::encode_frame(&tx.frame, asn, &mut tap.buf);
            tap.sink.on_transmission(&gtt_net::TapRecord {
                asn: asn.raw(),
                time,
                channel: tx.channel,
                src: tx.frame.src,
                dst: tx.frame.dst,
                packet: tx.frame.id,
                acked: acked[t],
                bytes: &tap.buf,
            });
        }
    }

    /// The event-driven sequential core of [`Network::run_until`]; also
    /// what each partition island runs on its own thread under the
    /// `parallel` feature.
    pub(crate) fn run_until_event(&mut self, end: SimTime) {
        self.ensure_wake_queue();
        let slot = self.config.mac.slot_duration;
        // `now() < end` ⟺ `asn < at_or_after(end)`: the loop and the heap
        // work in raw slot numbers, no time conversion per iteration.
        let end_asn = Asn::at_or_after(end, slot).raw();
        let mut s = std::mem::take(&mut self.scratch);
        while self.asn.raw() < end_asn {
            let Some(&Reverse((wake_asn, _))) = self.wake.peek() else {
                // Nothing will ever wake again: fast-forward to the end.
                self.asn = Asn::new(end_asn);
                break;
            };
            let wake_asn = wake_asn.max(self.asn.raw());
            if wake_asn >= end_asn {
                self.asn = Asn::new(end_asn);
                break;
            }
            self.asn = Asn::new(wake_asn);
            self.fill_due(&mut s.due);
            // Empty when every due entry belonged to a dead node; the
            // slot is then an ordinary sleep/idle-listen slot.
            if !s.due.is_empty() {
                self.process_slot(&mut s);
                self.asn = self.asn.next();
                for &i in &s.resched {
                    self.schedule_node_wake(i);
                }
            } else {
                self.asn = self.asn.next();
            }
        }
        self.scratch = s;
        self.sync_accounting();
    }

    /// Runs `slots` timeslots.
    pub fn run_slots(&mut self, slots: u64) {
        let end = (self.asn + slots).start_time(self.config.mac.slot_duration);
        self.run_until(end);
    }

    /// Runs for (at least) the given simulated duration.
    pub fn run_for(&mut self, duration: SimDuration) {
        self.run_until(self.now() + duration);
    }

    /// One slot of the pre-refactor exhaustive loop: every alive node
    /// runs upkeep and plans the slot, whether or not anything is due.
    /// Kept as the equivalence oracle for the event-driven core. (With
    /// every alive node already due, the listener probe inside
    /// [`Network::process_slot`] finds nothing to add, so this *is* the
    /// old exhaustive loop.)
    fn step_naive(&mut self) {
        let mut s = std::mem::take(&mut self.scratch);
        s.due.clear();
        s.due
            .extend((0..self.nodes.len()).filter(|&i| self.nodes[i].alive));
        self.process_slot(&mut s);
        self.scratch = s;
        self.asn = self.asn.next();
    }

    /// Runs one timeslot for `s.due` (sorted, deduplicated, alive node
    /// indices), plus any passive listener a planned transmission is
    /// audible to. Leaves the processed nodes that need a fresh wake-up
    /// queued in `s.resched` (see phase 5). Nodes not processed at all
    /// provably either sleep or idle-listen this slot — both are pure
    /// counter updates, accounted lazily by [`Network::settle_node`].
    fn process_slot(&mut self, s: &mut SlotScratch) {
        let now = self.now();
        let asn_raw = self.asn.raw();
        debug_assert!(s.due.windows(2).all(|w| w[0] < w[1]), "due not sorted");

        // Phase 0+1: catch up lazy accounting, then run timers, control
        // plane and application for the due nodes (in node order — packet
        // ids are handed out here).
        s.due_versions.clear();
        for &i in &s.due {
            s.due_versions.push(self.nodes[i].mac.schedule().version());
            self.settle_node(i, asn_raw);
            self.nodes[i].accounted_asn = asn_raw + 1;
            // Catch up skipped-range backoff consumption before upkeep
            // can mutate the queues the closed form relies on.
            self.nodes[i].mac.settle_backoff_to(asn_raw);
            // Upkeep is a provable no-op strictly before the node's
            // earliest deadline (every layer early-outs; no RNG draw, no
            // state change), so pure radio wake-ups skip the whole pass
            // — the oracle core runs it exhaustively and observes the
            // same nothing. `timer_wake` is the rounded deadline slot
            // recorded at scheduling time; deadlines cannot move without
            // a processing that re-records it.
            if self.naive || asn_raw >= self.timer_wake[i] {
                let output = self.nodes[i].upkeep(now);
                self.apply_upkeep(i, output, now);
            }
        }

        // Phase 2: every due MAC plans its slot. Probed listeners never
        // transmit, so the transmission vec — built in due (= node)
        // order — is already in its final order here. In the event core,
        // a due node that provably sleeps (timer-only wake-up) settles
        // its counters directly instead of a plan/finish round-trip; the
        // oracle keeps calling `plan_slot` exhaustively.
        s.transmissions.clear();
        s.pre_due.clear();
        for &i in &s.due {
            if !self.naive && self.nodes[i].mac.sleeps_at(self.asn) {
                self.nodes[i].mac.account_skipped(1, 0);
                s.pre_due.push((i, Pre::Sleep));
                continue;
            }
            match self.nodes[i].mac.plan_slot(self.asn) {
                SlotAction::Sleep => s.pre_due.push((i, Pre::Sleep)),
                SlotAction::Transmit { channel, frame, .. } => {
                    s.pre_due.push((i, Pre::Tx(s.transmissions.len())));
                    s.transmissions.push(Transmission { channel, frame });
                }
                SlotAction::Listen { channel, .. } => s.pre_due.push((i, Pre::Listen(channel))),
            }
        }

        // Phase 2b: planned transmissions wake the passive listeners that
        // could hear them. Only listeners with something audible can
        // touch the medium RNG or receive; everyone else's listen is an
        // `Idle` counter update, left to lazy accounting. Active
        // (multi-slotframe) nodes are already in `due` whenever they
        // listen, so probing only passive nodes is exhaustive. Audibility
        // is probed from `frame.src`, the same field the medium resolves
        // against. Each audible peer is probed at most once per slot, no
        // matter how many transmissions can reach it (the visited bitset
        // dedups the neighborhood walk), and the common "peer sleeps"
        // answer comes from the dense probe index without touching the
        // peer at all: a row only needs recomputing when the cached
        // listen slot has passed or the node was processed since. A peer
        // listening this slot is matched against only the transmissions
        // on *its* channel.
        s.extras.clear();
        if !s.transmissions.is_empty() {
            let asn = self.asn;
            let stamp = asn_raw + 1; // 0 = never stamped
            let topology = self.medium.topology();
            let nodes = &mut self.nodes;
            let visited = &mut self.wake_scratch;
            let probe = &mut self.probe_index;
            let stale = &mut self.probe_stale;
            let hopping = &self.config.hopping;
            // With a single transmission each peer is visited once, so
            // only the due-node marks are needed in the stamp array.
            let multi_tx = s.transmissions.len() > 1;
            for &(i, _) in &s.pre_due {
                visited[i] = stamp;
            }
            for t in &s.transmissions {
                for &peer in topology.audible_neighbors(t.frame.src) {
                    let j = peer.index();
                    if visited[j] == stamp {
                        continue;
                    }
                    if multi_tx {
                        visited[j] = stamp;
                    }
                    let mut entry = probe[j];
                    if stale[j] || asn_raw > entry.next {
                        // Recompute: the node was processed (schedule may
                        // have moved) or the cached listen slot passed —
                        // the latter, by far the common case, can trust
                        // the node's wake cache without a staleness
                        // check. Dead nodes pin a NEVER row — `kill_node`
                        // marks them stale exactly once.
                        let next = if !nodes[j].alive {
                            None
                        } else if stale[j] {
                            nodes[j].mac.next_listen(asn)
                        } else {
                            nodes[j].mac.next_listen_cached(asn)
                        };
                        entry = match next {
                            Some((l, offset)) => ProbeEntry {
                                next: l.raw(),
                                offset,
                            },
                            None => ProbeEntry::NEVER,
                        };
                        probe[j] = entry;
                        stale[j] = false;
                    }
                    if entry.next != asn_raw {
                        continue;
                    }
                    let listen = hopping.channel(asn, entry.offset);
                    // The triggering transmission `t` is audible to the
                    // peer by construction, so a channel match with it
                    // needs no further scan.
                    let audible_on_channel = listen == t.channel
                        || s.transmissions
                            .iter()
                            .any(|t2| t2.channel == listen && topology.audible(t2.frame.src, peer));
                    if audible_on_channel {
                        s.extras.push((j, listen));
                    }
                }
            }
            s.extras.sort_unstable_by_key(|&(j, _)| j);
            for &(j, _) in &s.extras {
                self.settle_node(j, asn_raw);
                self.nodes[j].accounted_asn = asn_raw + 1;
            }
        }

        // Phase 3: merge due and probed entries in node-id order — the
        // exhaustive loop iterates nodes in id order, and the medium's
        // RNG draws follow listener order, so order is part of
        // equivalence. Both inputs are sorted; a two-pointer merge avoids
        // sorting anything.
        s.listeners.clear();
        s.planned.clear();
        {
            let (mut a, mut b) = (0usize, 0usize);
            while a < s.pre_due.len() || b < s.extras.len() {
                let from_due =
                    b >= s.extras.len() || (a < s.pre_due.len() && s.pre_due[a].0 < s.extras[b].0);
                let (i, channel) = if from_due {
                    let (i, pre) = s.pre_due[a];
                    a += 1;
                    match pre {
                        Pre::Sleep => {
                            s.planned.push((i, Planned::Sleep));
                            continue;
                        }
                        Pre::Tx(t) => {
                            s.planned.push((i, Planned::Tx(t)));
                            continue;
                        }
                        Pre::Listen(channel) => {
                            s.planned.push((i, Planned::Listen(s.listeners.len())));
                            (i, channel)
                        }
                    }
                } else {
                    let (i, channel) = s.extras[b];
                    b += 1;
                    s.planned
                        .push((i, Planned::ProbedListen(s.listeners.len())));
                    (i, channel)
                };
                // Node ids are assigned from vec indices at build time,
                // so the id is derivable without touching the node.
                s.listeners.push(Listener {
                    node: NodeId::from_index(i),
                    channel,
                });
            }
        }

        // All-sleep slots (timer-only upkeep, nothing on the air) skip
        // the medium entirely: `finish_slot(Slept)` is a no-op beyond its
        // sanity assert, and every due node needs requeueing. Upkeep may
        // still have changed a schedule (an SF periodic hook), so the
        // probe-index invalidation check runs here too.
        if s.transmissions.is_empty() && s.listeners.is_empty() {
            s.resched.clear();
            s.resched.extend(s.planned.iter().map(|&(i, _)| i));
            for (k, &i) in s.due.iter().enumerate() {
                if self.nodes[i].mac.schedule().version() != s.due_versions[k] {
                    self.probe_stale[i] = true;
                }
            }
            return;
        }

        // Phase 4: the medium resolves all concurrent activity, into the
        // reused outcome buffers.
        self.medium
            .resolve_slot_into(&s.transmissions, &s.listeners, &mut s.outcomes);

        // Phase 4b: export the slot to the frame tap, if one is
        // installed — after resolution (the record carries the ACK
        // outcome), before feedback consumes the outcome buffers. Both
        // cores share this path, so a trace is identical under the
        // event core and the naive-step oracle.
        if self.tap.is_some() {
            self.drive_tap(&s.transmissions, &s.outcomes.acked);
        }

        // Phase 5: feed results back; deliver decoded frames upward.
        // `s.resched` collects the nodes whose wake-up chain must be
        // re-queued: due nodes always (their chain entry was just
        // consumed); probed listeners only when the slot changed what
        // they are waiting for — an idle/faded/overheard listen touches
        // nothing but counters, and even a delivery only matters if it
        // left traffic queued or moved a timer deadline. Their existing
        // heap entry covers everything else, and skipping the re-push
        // also avoids a later spurious wake-up from the stale duplicate.
        s.resched.clear();
        let mut du = 0usize; // cursor into due/due_versions for non-extras
        for &(i, ref p) in &s.planned {
            if let Planned::ProbedListen(l) = *p {
                // A probed listen completes without a plan/finish
                // round-trip; only a delivery that left traffic queued or
                // moved a timer deadline invalidates the listener's
                // existing heap entry. Its probe-index row expires on its
                // own (the cached listen slot is *this* slot).
                let outcome = s.outcomes.take_rx(l);
                // Only a decoded frame can reach the upper layers; for
                // every other outcome the before/after bookkeeping below
                // would be dead weight on the hot path.
                let may_deliver = matches!(outcome, gtt_net::RxOutcome::Received(_));
                let (deadline_before, schedule_before, queued_before) = if may_deliver {
                    (
                        self.nodes[i].next_timer_deadline(),
                        self.nodes[i].mac.schedule().version(),
                        self.nodes[i].mac.data_queue_len() + self.nodes[i].mac.control_queue_len(),
                    )
                } else {
                    (None, 0, 0)
                };
                if let Some(frame) = self.nodes[i].mac.finish_probed_listen(self.asn, outcome) {
                    self.deliver(i, frame, now);
                    // A schedule mutation also invalidates the heap
                    // entry *and* the probe-index row: the delivery may
                    // have changed the node's Rx union or even demoted
                    // it from passive to always-wake, in which case the
                    // probe stops covering its listens. Pre-existing
                    // queued traffic does neither — the standing wake
                    // entry was computed with it — so only queue
                    // *growth* re-queues.
                    let schedule_changed =
                        self.nodes[i].mac.schedule().version() != schedule_before;
                    if schedule_changed {
                        self.probe_stale[i] = true;
                    }
                    if schedule_changed
                        || self.nodes[i].mac.data_queue_len()
                            + self.nodes[i].mac.control_queue_len()
                            > queued_before
                        || self.nodes[i].next_timer_deadline() != deadline_before
                    {
                        s.resched.push(i);
                    }
                }
                continue;
            }
            let result = match *p {
                Planned::Tx(t) => SlotResult::Transmitted {
                    acked: s.outcomes.acked[t],
                },
                Planned::Listen(l) => SlotResult::Listened(s.outcomes.take_rx(l)),
                Planned::ProbedListen(_) => unreachable!("handled above"),
                Planned::Sleep => SlotResult::Slept,
            };
            // A MAC ETX estimate moves only when a unicast attempt is
            // acked or exhausts its retries (a plain nack just requeues).
            // Watch both so RPL's next deadline-driven fire refreshes
            // rank/parent selection exactly when its inputs changed —
            // flagging every failed attempt would pin lossy-link nodes'
            // RPL deadline at "now" and waste an O(degree) refresh per
            // retry.
            let unicast_tx = matches!(*p, Planned::Tx(t) if s.outcomes.acked[t].is_some());
            let acked = matches!(*p, Planned::Tx(t) if s.outcomes.acked[t] == Some(true));
            let drops_before = self.nodes[i].mac.counters().drops_retry_exhausted;
            if let Some(frame) = self.nodes[i].mac.finish_slot(result) {
                self.deliver(i, frame, now);
            }
            if unicast_tx
                && (acked || self.nodes[i].mac.counters().drops_retry_exhausted > drops_before)
            {
                self.nodes[i].rpl.mark_link_stats_dirty();
            }
            // Due nodes (upkeep hooks, deliveries, 6P) are the only ones
            // that can move their own Rx schedule; invalidate the probe
            // row exactly when that happened.
            debug_assert_eq!(s.due[du], i, "planned non-extras follow due order");
            if self.nodes[i].mac.schedule().version() != s.due_versions[du] {
                self.probe_stale[i] = true;
            }
            du += 1;
            s.resched.push(i);
        }
    }

    /// Seeds the wake queue on first use: every alive node is woken in
    /// the current slot (one exhaustive slot), after which each reports
    /// its own next wake-up.
    pub(crate) fn ensure_wake_queue(&mut self) {
        if self.wake_init {
            return;
        }
        self.wake_init = true;
        let asn = self.asn.raw();
        for i in 0..self.nodes.len() {
            if self.nodes[i].alive {
                self.wake_slot[i] = asn;
                self.timer_wake[i] = asn; // first slot runs full upkeep
                self.wake.push(Reverse((asn, i as u32)));
            }
        }
    }

    /// Pops every wake-up due in the current slot into `due` (cleared
    /// first): the sorted, deduplicated indices of the alive nodes among
    /// them.
    fn fill_due(&mut self, due: &mut Vec<usize>) {
        due.clear();
        let now = self.asn.raw();
        while let Some(&Reverse((asn, idx))) = self.wake.peek() {
            if asn > now {
                break;
            }
            self.wake.pop();
            let i = idx as usize;
            // Entries superseded by a later re-push are dropped in O(1):
            // the authoritative wake is whatever the node's last
            // scheduling decision recorded.
            if self.nodes[i].alive && self.wake_slot[i] == asn {
                due.push(i);
            }
        }
        due.sort_unstable();
        due.dedup();
    }

    /// Computes and enqueues node `i`'s next wake-up: the earlier of its
    /// MAC's next radio wake (transmission opportunities for passive
    /// listeners, any active slot otherwise) and its next timer deadline
    /// (rounded up to the slot boundary where a slot-synchronous loop
    /// would observe it).
    fn schedule_node_wake(&mut self, i: usize) {
        if !self.nodes[i].alive {
            return;
        }
        let mac = self.nodes[i].mac.next_radio_wake(self.asn).map(Asn::raw);
        let timer = self.nodes[i].next_timer_deadline().map(|d| {
            let memo = &mut self.nodes[i].timer_wake_memo;
            let asn = match *memo {
                Some((at, asn)) if at == d => asn,
                _ => {
                    let asn = Asn::at_or_after(d, self.config.mac.slot_duration).raw();
                    *memo = Some((d, asn));
                    asn
                }
            };
            asn.max(self.asn.raw())
        });
        self.timer_wake[i] = timer.unwrap_or(u64::MAX);
        let wake = match (mac, timer) {
            (Some(m), Some(t)) => m.min(t),
            (Some(m), None) => m,
            (None, Some(t)) => t,
            (None, None) => {
                self.wake_slot[i] = u64::MAX;
                return;
            }
        };
        self.wake_slot[i] = wake;
        self.wake.push(Reverse((wake, i as u32)));
    }

    /// Catches node `i`'s lazily-accounted counters up to `upto_raw`:
    /// every skipped slot was a sleep or (for passive listeners with a
    /// scheduled Rx cell) an idle listen, counted exactly from the MAC's
    /// Rx index.
    fn settle_node(&mut self, i: usize, upto_raw: u64) {
        let node = &mut self.nodes[i];
        let from = node.accounted_asn;
        if upto_raw > from {
            let listens = node
                .mac
                .count_listen_slots(Asn::new(from), Asn::new(upto_raw));
            node.mac.account_skipped(upto_raw - from, listens);
            node.accounted_asn = upto_raw;
        }
    }

    /// Brings every alive node's MAC counters up to the current ASN by
    /// accounting the sleep and idle-listen slots the event core skipped.
    /// Idempotent; called at the end of every public stepping call and at
    /// measurement boundaries so external observers never see stale
    /// duty-cycle numbers.
    pub fn sync_accounting(&mut self) {
        let asn_raw = self.asn.raw();
        for i in 0..self.nodes.len() {
            if self.nodes[i].alive {
                self.settle_node(i, asn_raw);
            }
        }
    }

    /// Begins the measurement window: packets generated from now on are
    /// tracked and per-node counters are snapshotted.
    pub fn start_measurement(&mut self) {
        self.sync_accounting();
        let now = self.now();
        self.measure_start = Some(now);
        self.measure_end = None;
        self.tracker.set_window(now, SimTime::MAX);
        self.snapshots = self
            .nodes
            .iter()
            .map(|node| Snapshot {
                counters: node.mac.counters(),
                queue_loss: node.mac.queue_loss(),
                routing_drops: node.routing_drops,
            })
            .collect();
    }

    /// Ends the measurement window.
    ///
    /// # Panics
    ///
    /// Panics if [`Network::start_measurement`] was not called.
    pub fn finish_measurement(&mut self) {
        self.sync_accounting();
        let start = self
            .measure_start
            .expect("start_measurement must be called first");
        let now = self.now();
        self.measure_end = Some(now);
        self.tracker.set_window(start, now);
    }

    /// Produces the measurement report.
    ///
    /// # Panics
    ///
    /// Panics unless measurement was started and finished.
    pub fn report(&self) -> NetworkReport {
        NetworkReport::collect(self)
    }

    /// Fault injection: silences `node` from the next slot on (crash,
    /// battery death). Dead nodes keep their state for post-mortem
    /// inspection but neither transmit, listen nor run timers.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn kill_node(&mut self, node: NodeId) {
        let i = node.index();
        // Freeze the counters exactly at the kill slot: a slot-by-slot
        // loop would have counted every slot up to (excluding) the
        // current one while the node was still alive.
        if self.nodes[i].alive {
            self.settle_node(i, self.asn.raw());
        }
        self.nodes[i].alive = false;
        // The probe index may still predict a listen for this node; the
        // stale row resolves to NEVER on its next probe.
        self.probe_stale[i] = true;
    }

    /// Fault injection: overrides the PRR of the directed link `a → b`
    /// from the next slot on.
    ///
    /// # Panics
    ///
    /// Panics if `prr` is outside `[0, 1]`.
    pub fn set_link_prr(&mut self, a: NodeId, b: NodeId, prr: f64) {
        self.medium.topology_mut().set_link_prr(a, b, prr);
    }

    /// Fault injection: symmetric variant of
    /// [`Network::set_link_prr`].
    pub fn set_link_prr_symmetric(&mut self, a: NodeId, b: NodeId, prr: f64) {
        self.set_link_prr(a, b, prr);
        self.set_link_prr(b, a, prr);
    }

    /// Fault injection: removes a [`Network::set_link_prr`] override,
    /// restoring the link model's PRR for `a → b` from the next slot on.
    pub fn clear_link_prr(&mut self, a: NodeId, b: NodeId) {
        self.medium.topology_mut().clear_link_prr(a, b);
    }

    /// Mobility: relocates `node` to `to` from the next slot on. Link
    /// PRRs and audibility follow the new distances immediately
    /// ([`Topology::set_position`] rebuilds the audible adjacency).
    ///
    /// No engine bookkeeping needs invalidating: the wake heap and the
    /// listener-probe index cache *schedule* facts (when a node listens),
    /// never audibility — every per-slot audibility decision reads the
    /// topology fresh, so a relocated passive listener is picked up by
    /// the very next audible transmission. The `naive-step` equivalence
    /// suite pins mobile runs against the exhaustive oracle.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn move_node(&mut self, node: NodeId, to: gtt_net::Position) {
        self.medium.topology_mut().set_position(node, to);
    }

    /// Throttles (or releases) `node`'s application source: while
    /// throttled, due packets are discarded instead of enqueued, but the
    /// source's phase keeps advancing — the node's wake pattern is
    /// byte-identical throttled or not, so duty-cycle-budget overlays
    /// stay equivalent between the event-driven core and the oracle.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn set_app_throttled(&mut self, node: NodeId, throttled: bool) {
        self.nodes[node.index()].app_throttled = throttled;
    }

    /// Enables or disables island-parallel stepping at runtime.
    ///
    /// When enabled, [`Network::run_until`] (and everything built on it:
    /// `run_for`, `run_slots`) resolves radio-disjoint partition islands
    /// on scoped threads. Reports are byte-identical either way — this
    /// is purely a wall-clock switch, which is why it is *not* part of
    /// an experiment's canonical encoding. Single-slot [`Network::step`]
    /// always runs sequentially.
    #[cfg(feature = "parallel")]
    pub fn set_parallel(&mut self, parallel: bool) {
        self.parallel = parallel;
    }

    /// True when island-parallel stepping is enabled.
    #[cfg(feature = "parallel")]
    pub fn parallel_enabled(&self) -> bool {
        self.parallel
    }

    fn apply_upkeep(&mut self, i: usize, output: UpkeepOutput, now: SimTime) {
        // Scheduler reactions to parent changes.
        for (old, new) in output.parent_changes {
            self.nodes[i].with_scheduler(now, |sf, ctx| sf.on_parent_changed(ctx, old, new));
        }
        // Application packets.
        for _ in 0..output.generated_packets {
            let Some(parent) = self.nodes[i].rpl.parent() else {
                continue;
            };
            let origin = self.nodes[i].id();
            // Origin-keyed ids: each node numbers its own packets, so id
            // assignment never depends on cross-node stepping order and
            // partition islands can generate packets concurrently.
            let id = PacketId::new(((origin.index() as u64) << 48) | self.nodes[i].packet_seq);
            self.nodes[i].packet_seq += 1;
            self.tracker.record_generated(id, origin, now);
            self.nodes[i].generated_total += 1;
            let frame = Frame::new(id, origin, Dest::Unicast(parent), now, Payload::Data);
            // Overflow is counted by the queue itself (queue loss).
            let _ = self.nodes[i].mac.enqueue_data(frame);
        }
    }

    /// Dispatches a frame the MAC accepted to the right upper layer.
    fn deliver(&mut self, i: usize, frame: Frame<Payload>, now: SimTime) {
        match frame.payload.clone() {
            Payload::Data => {
                if self.nodes[i].rpl.is_root() {
                    // +1: `hops` counts completed forwards; this reception
                    // is one more link-layer hop.
                    self.tracker
                        .record_delivered(frame.id, now, frame.hops.saturating_add(1));
                } else if let Some(parent) = self.nodes[i].rpl.parent() {
                    let fwd = frame.forwarded(self.nodes[i].id(), Dest::Unicast(parent));
                    let _ = self.nodes[i].mac.enqueue_data(fwd);
                } else {
                    self.nodes[i].routing_drops += 1;
                }
            }
            Payload::Eb(info) => {
                self.nodes[i].with_scheduler(now, |sf, ctx| sf.on_eb(ctx, frame.src, &info));
            }
            Payload::Dio(dio) => {
                let etx = self.nodes[i].mac.etx(frame.src);
                let mut actions = self.nodes[i].take_rpl_actions();
                self.nodes[i]
                    .rpl
                    .handle_dio_into(frame.src, dio, etx, now, &mut actions);
                let mut out = UpkeepOutput::default();
                self.nodes[i].process_rpl_actions(&mut actions, now, &mut out);
                self.nodes[i].restore_rpl_actions(actions);
                for (old, new) in out.parent_changes {
                    self.nodes[i]
                        .with_scheduler(now, |sf, ctx| sf.on_parent_changed(ctx, old, new));
                }
            }
            Payload::Dao(dao) => {
                self.nodes[i].rpl.handle_dao(frame.src, dao, now);
                self.nodes[i].with_scheduler(now, |sf, ctx| sf.on_dao(ctx, dao.child, dao.no_path));
            }
            Payload::SixP(msg) => {
                if let Some(event) = self.nodes[i].sixtop.handle_message(frame.src, msg) {
                    self.nodes[i].dispatch_sixtop_event(event, now);
                }
            }
        }
    }
}

impl NetworkBuilder {
    /// Declares `id` a DODAG root.
    pub fn root(mut self, id: NodeId) -> Self {
        self.roots.push(id);
        self
    }

    /// Declares several roots.
    pub fn roots<I: IntoIterator<Item = NodeId>>(mut self, ids: I) -> Self {
        self.roots.extend(ids);
        self
    }

    /// Gives every non-root node a CBR source of `ppm` packets/minute.
    pub fn traffic_ppm(mut self, ppm: f64) -> Self {
        self.traffic_ppm = Some(ppm);
        self
    }

    /// Sets the scheduling-function factory, called once per node with
    /// `(id, is_root)`.
    pub fn scheduler_factory<F>(mut self, f: F) -> Self
    where
        F: Fn(NodeId, bool) -> Box<dyn SchedulingFunction> + 'static,
    {
        self.factory = Some(Box::new(f));
        self
    }

    /// Uses the exhaustive slot-by-slot oracle loop instead of the
    /// event-driven core.
    ///
    /// Only for equivalence testing and benchmarking: both cores must
    /// produce byte-identical [`NetworkReport`]s for the same seed. Gated
    /// behind the `naive-step` feature so the oracle cannot leak into
    /// production use.
    #[cfg(any(test, feature = "naive-step"))]
    pub fn naive_stepping(mut self) -> Self {
        self.naive = true;
        self
    }

    /// Builds the network with island-parallel stepping enabled (same
    /// switch as [`Network::set_parallel`]).
    #[cfg(feature = "parallel")]
    pub fn parallel_stepping(mut self) -> Self {
        self.parallel = true;
        self
    }

    /// Builds the network and runs every scheduler's `init` hook.
    ///
    /// # Panics
    ///
    /// Panics when no roots or no factory were configured, when a root id
    /// is out of range, or when the configuration is invalid.
    pub fn build(self) -> Network {
        self.config.validate();
        assert!(!self.roots.is_empty(), "a network needs at least one root");
        assert!(
            self.factory.is_some(),
            "a scheduler factory must be configured"
        );
        let factory = self.factory.expect("checked above");
        for r in &self.roots {
            assert!(
                r.index() < self.topology.len(),
                "root {r} outside the topology"
            );
        }

        let mut master = Pcg32::new(self.config.seed);
        let medium_rng = master.split();
        let n = self.topology.len();

        // Root membership as a bitset: the per-node loop below must not
        // rescan the root list for every node (O(n · roots)).
        let mut is_root_bits = vec![false; n];
        for r in &self.roots {
            is_root_bits[r.index()] = true;
        }

        let mut nodes = Vec::with_capacity(n);
        for (i, &is_root) in is_root_bits.iter().enumerate() {
            let id = NodeId::from_index(i);
            let mut rng = master.split();
            let mac = TschMac::new(
                id,
                self.config.mac.clone(),
                self.config.hopping.clone(),
                rng.split(),
            );
            let rpl_cfg: RplConfig = self.config.rpl.clone();
            let rpl = if is_root {
                RplNode::new_root(id, rpl_cfg, SimTime::ZERO)
            } else {
                RplNode::new(id, rpl_cfg)
            };
            let sixtop = SixtopLayer::new(id, self.config.sixtop.clone());
            let scheduler = factory(id, is_root);
            let mut node = Node::new(mac, rpl, sixtop, scheduler, rng);

            // Stagger periodic timers with per-node phase jitter so the
            // whole network does not beacon in the same slot. The span is
            // clamped into [2, u32::MAX] µs: sub-2 µs periods must not
            // produce an empty RNG range, and periods beyond ~71 minutes
            // must not truncate into one when cast.
            let jitter = |rng: &mut Pcg32, period: SimDuration| {
                let span = period.as_micros().clamp(2, u32::MAX as u64) as u32;
                SimDuration::from_micros(rng.gen_range_u32(0, span) as u64)
            };
            node.eb_period = self.config.eb_period;
            let eb_phase = jitter(&mut node.rng, self.config.eb_period);
            node.timers
                .arm_one_shot(crate::node::TimerKind::Eb, SimTime::ZERO + eb_phase);
            let sf_phase = jitter(&mut node.rng, self.config.sf_period);
            node.timers.arm_periodic(
                crate::node::TimerKind::Sf,
                SimTime::ZERO + sf_phase,
                self.config.sf_period,
            );
            // No RPL phase: RPL housekeeping has no period any more — the
            // layer fires at its own exact deadlines.

            if let Some(ppm) = self.traffic_ppm {
                if !is_root {
                    node.app = Some(AppTraffic::new(ppm, &mut node.rng));
                }
            }
            nodes.push(node);
        }

        let mut net = Network {
            config: self.config,
            nodes,
            medium: RadioMedium::new(self.topology, medium_rng),
            tracker: PacketTracker::new(),
            asn: Asn::ZERO,
            measure_start: None,
            measure_end: None,
            snapshots: Vec::new(),
            wake: BinaryHeap::new(),
            wake_init: false,
            wake_scratch: vec![0; n],
            probe_index: vec![ProbeEntry::NEVER; n],
            probe_stale: vec![true; n],
            wake_slot: vec![u64::MAX; n],
            timer_wake: vec![u64::MAX; n],
            scratch: SlotScratch::default(),
            tap: None,
            naive: self.naive,
            #[cfg(feature = "parallel")]
            parallel: self.parallel,
            #[cfg(feature = "parallel")]
            island_pool: crate::parallel::IslandPool::default(),
        };
        for i in 0..net.nodes.len() {
            net.nodes[i].with_scheduler(SimTime::ZERO, |sf, ctx| sf.init(ctx));
        }
        net
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::minimal::MinimalSchedule;
    use gtt_net::{LinkModel, Position, TopologyBuilder};

    fn star_topology(leaves: usize) -> Topology {
        let mut b = TopologyBuilder::new(40.0).link_model(LinkModel::default());
        b = b.node(Position::new(0.0, 0.0));
        for i in 0..leaves {
            let angle = i as f64 * std::f64::consts::TAU / leaves as f64;
            b = b.node(Position::new(25.0 * angle.cos(), 25.0 * angle.sin()));
        }
        b.build()
    }

    fn build(naive: bool, seed: u64) -> Network {
        let config = EngineConfig {
            seed,
            ..EngineConfig::default()
        };
        let mut builder = Network::builder(star_topology(5), config)
            .root(NodeId::new(0))
            .traffic_ppm(30.0)
            .scheduler_factory(|_, _| Box::new(MinimalSchedule::new(8)));
        if naive {
            builder = builder.naive_stepping();
        }
        builder.build()
    }

    fn measured_report(net: &mut Network) -> NetworkReport {
        net.run_for(SimDuration::from_secs(30));
        net.start_measurement();
        net.run_for(SimDuration::from_secs(30));
        net.finish_measurement();
        net.report()
    }

    /// The crown invariant of the event-driven refactor: for the same
    /// seed, the wake-queue core and the exhaustive oracle loop must be
    /// indistinguishable — identical reports, counters and final clock.
    #[test]
    fn event_core_matches_naive_oracle() {
        for seed in [1u64, 7, 23] {
            let mut event = build(false, seed);
            let mut naive = build(true, seed);
            let re = measured_report(&mut event);
            let rn = measured_report(&mut naive);
            assert_eq!(re, rn, "seed {seed}: reports diverge");
            assert_eq!(event.asn(), naive.asn(), "seed {seed}: clocks diverge");
        }
    }

    /// Stepping one slot at a time through the event core must also match
    /// the oracle (exercises the step() path rather than run_until()).
    #[test]
    fn single_stepping_matches_oracle() {
        let mut event = build(false, 5);
        let mut naive = build(true, 5);
        for _ in 0..2_000 {
            event.step();
            naive.step();
        }
        assert_eq!(event.asn(), naive.asn());
        for (a, b) in event.nodes().iter().zip(naive.nodes()) {
            assert_eq!(a.mac.counters(), b.mac.counters(), "node {}", a.id());
        }
    }

    /// Killing a node mid-run freezes its counters identically in both
    /// cores and the survivors stay equivalent.
    #[test]
    fn kill_node_keeps_cores_equivalent() {
        let mut event = build(false, 9);
        let mut naive = build(true, 9);
        event.run_for(SimDuration::from_secs(20));
        naive.run_for(SimDuration::from_secs(20));
        event.kill_node(NodeId::new(3));
        naive.kill_node(NodeId::new(3));
        let re = measured_report(&mut event);
        let rn = measured_report(&mut naive);
        assert_eq!(re, rn);
    }

    /// Relocating a node mid-run keeps the two cores equivalent: the
    /// leaf walks out of everyone's range and back, changing audibility
    /// and every PRR it is part of, twice.
    #[test]
    fn move_node_keeps_cores_equivalent() {
        let mut event = build(false, 13);
        let mut naive = build(true, 13);
        for net in [&mut event, &mut naive] {
            net.run_for(SimDuration::from_secs(15));
            net.move_node(NodeId::new(2), Position::new(500.0, 0.0));
            net.run_for(SimDuration::from_secs(15));
            net.move_node(NodeId::new(2), Position::new(20.0, 5.0));
        }
        let re = measured_report(&mut event);
        let rn = measured_report(&mut naive);
        assert_eq!(re, rn, "mobile runs diverge");
        assert_eq!(
            event.topology().position(NodeId::new(2)),
            Position::new(20.0, 5.0)
        );
    }

    /// Throttling suppresses generation without touching the source's
    /// phase; releasing resumes at the natural rate (no catch-up burst).
    #[test]
    fn app_throttle_suppresses_generation_only() {
        let mut net = build(false, 3);
        net.run_for(SimDuration::from_secs(30)); // join + converge
        let victim = NodeId::new(1);
        let before = net.node(victim).generated_total();
        net.set_app_throttled(victim, true);
        assert!(net.node(victim).is_app_throttled());
        net.run_for(SimDuration::from_secs(60));
        assert_eq!(
            net.node(victim).generated_total(),
            before,
            "throttled node must not generate"
        );
        net.set_app_throttled(victim, false);
        net.run_for(SimDuration::from_secs(60));
        let resumed = net.node(victim).generated_total() - before;
        // 30 ppm for 60 s ≈ 30 packets; a catch-up burst would add ~30.
        assert!(
            (20..=40).contains(&resumed),
            "resume must be burst-free, got {resumed}"
        );
    }

    /// An idle network (no traffic, no schedulers installing cells beyond
    /// broadcast) still advances its clock to exactly the requested end.
    #[test]
    fn run_slots_lands_on_exact_asn() {
        let mut net = build(false, 2);
        net.run_slots(12_345);
        assert_eq!(net.asn(), Asn::new(12_345));
        net.run_for(SimDuration::from_millis(150)); // 10 slots of 15 ms
        assert_eq!(net.asn(), Asn::new(12_355));
    }
}
