//! The 6TiSCH *minimal configuration* scheduling function (RFC 8180).
//!
//! One slotframe, one shared broadcast cell at slot 0 for all control
//! traffic, and every remaining slot a contention-based shared cell for
//! everything else. This is the bootstrap schedule 6TiSCH networks run
//! before a real SF takes over; here it serves three purposes:
//!
//! * a third comparison point in the benches (the paper's related work
//!   §II discusses minimal-configuration latency problems found by
//!   Vallati et al.),
//! * the engine's built-in test scheduler,
//! * a template showing how little an SF must implement.

use gtt_mac::{
    Cell, CellClass, CellOptions, ChannelOffset, SlotOffset, Slotframe, SlotframeHandle,
};
use gtt_net::Dest;

use crate::scheduler::{SchedulingFunction, SfContext};

/// Minimal-configuration SF: slot 0 broadcast + shared data cells.
#[derive(Debug, Clone)]
pub struct MinimalSchedule {
    slotframe_len: u16,
}

impl MinimalSchedule {
    /// Creates the SF with the given slotframe length.
    ///
    /// # Panics
    ///
    /// Panics if `slotframe_len < 2` (slot 0 is the broadcast cell; at
    /// least one shared data slot is needed).
    pub fn new(slotframe_len: u16) -> Self {
        assert!(slotframe_len >= 2, "minimal schedule needs ≥ 2 slots");
        MinimalSchedule { slotframe_len }
    }
}

impl SchedulingFunction for MinimalSchedule {
    fn name(&self) -> &'static str {
        "minimal"
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn init(&mut self, ctx: &mut SfContext<'_>) {
        let mut sf = Slotframe::new(self.slotframe_len);
        sf.add(Cell::broadcast(SlotOffset::new(0), ChannelOffset::new(0)));
        for slot in 1..self.slotframe_len {
            sf.add(Cell::new(
                SlotOffset::new(slot),
                ChannelOffset::new(0),
                CellOptions::TX_RX_SHARED,
                Dest::Broadcast,
                CellClass::Shared,
            ));
        }
        ctx.mac
            .schedule_mut()
            .add_slotframe(SlotframeHandle::new(0), sf);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "≥ 2 slots")]
    fn tiny_slotframe_rejected() {
        let _ = MinimalSchedule::new(1);
    }

    #[test]
    fn name_is_minimal() {
        assert_eq!(MinimalSchedule::new(4).name(), "minimal");
    }
}
