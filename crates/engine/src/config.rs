//! Engine configuration.

use gtt_mac::{HoppingSequence, MacConfig};
use gtt_rpl::RplConfig;
use gtt_sim::SimDuration;
use gtt_sixtop::SixtopConfig;

/// Configuration for a [`Network`](crate::Network) run.
///
/// Defaults reproduce the paper's Table II: 15 ms slots, 8-channel hopping
/// sequence, EB period 2 s, 4 retransmissions, MRHOF.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// MAC parameters.
    pub mac: MacConfig,
    /// RPL parameters.
    pub rpl: RplConfig,
    /// 6P parameters.
    pub sixtop: SixtopConfig,
    /// Channel-hopping sequence (Table II: `17,23,15,25,19,11,13,21`).
    pub hopping: HoppingSequence,
    /// EB broadcast period (Table II: 2 s).
    pub eb_period: SimDuration,
    /// Cadence of the scheduling function's `periodic` hook (GT-TSCH's
    /// load-balancing / slotframe-update timer, §VI).
    pub sf_period: SimDuration,
    /// Root experiment seed; every node and the medium derive their own
    /// streams from it.
    pub seed: u64,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            mac: MacConfig::paper_default(),
            rpl: RplConfig::default(),
            sixtop: SixtopConfig::default(),
            hopping: HoppingSequence::paper_default(),
            eb_period: SimDuration::from_secs(2),
            sf_period: SimDuration::from_secs(2),
            seed: 1,
        }
    }
}

impl EngineConfig {
    /// Steady-state low-power cadences: the paper's Table II runs EBs
    /// every 2 s to converge experiments quickly, but a deployed TSCH
    /// network advertises far less often — Contiki-NG's default
    /// `TSCH_EB_PERIOD` is 16 s — and re-balances its schedule on the
    /// scale of many slotframes. This preset models that regime (the
    /// benches' "sparse traffic" scenarios): EB 16 s and a
    /// scheduling-function period of 8 s. There is no RPL cadence to
    /// stretch any more: since the control plane went deadline-driven,
    /// RPL work (neighbor aging against a 600 s timeout, Trickle
    /// intervals of minutes, 60 s DAO refreshes, ETX-driven rank updates)
    /// fires at each layer's own exact deadline in *every* preset, which
    /// is precisely the deployed-stack behavior this preset used to
    /// approximate with a coarse 10 s poll.
    pub fn low_power() -> Self {
        EngineConfig {
            eb_period: SimDuration::from_secs(16),
            sf_period: SimDuration::from_secs(8),
            ..EngineConfig::default()
        }
    }

    /// Validates nested configurations.
    ///
    /// # Panics
    ///
    /// Panics on invalid values.
    pub fn validate(&self) {
        self.mac.validate();
        assert!(!self.eb_period.is_zero(), "EB period must be positive");
        assert!(!self.sf_period.is_zero(), "SF period must be positive");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid_and_paper_shaped() {
        let cfg = EngineConfig::default();
        cfg.validate();
        assert_eq!(cfg.mac.slot_duration.as_millis(), 15);
        assert_eq!(cfg.eb_period.as_millis(), 2_000);
        assert_eq!(cfg.hopping.len(), 8);
    }

    #[test]
    fn low_power_is_valid_and_coarser() {
        let cfg = EngineConfig::low_power();
        cfg.validate();
        // Same MAC/Table II parameters, only the cadences stretch.
        assert_eq!(cfg.mac.slot_duration.as_millis(), 15);
        assert!(cfg.eb_period > EngineConfig::default().eb_period);
        assert!(cfg.sf_period > EngineConfig::default().sf_period);
    }

    #[test]
    #[should_panic(expected = "EB period")]
    fn zero_eb_period_rejected() {
        let cfg = EngineConfig {
            eb_period: SimDuration::ZERO,
            ..EngineConfig::default()
        };
        cfg.validate();
    }
}
