//! Engine configuration.

use gtt_mac::{HoppingSequence, MacConfig};
use gtt_rpl::RplConfig;
use gtt_sim::SimDuration;
use gtt_sixtop::SixtopConfig;

/// Configuration for a [`Network`](crate::Network) run.
///
/// Defaults reproduce the paper's Table II: 15 ms slots, 8-channel hopping
/// sequence, EB period 2 s, 4 retransmissions, MRHOF.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// MAC parameters.
    pub mac: MacConfig,
    /// RPL parameters.
    pub rpl: RplConfig,
    /// 6P parameters.
    pub sixtop: SixtopConfig,
    /// Channel-hopping sequence (Table II: `17,23,15,25,19,11,13,21`).
    pub hopping: HoppingSequence,
    /// EB broadcast period (Table II: 2 s).
    pub eb_period: SimDuration,
    /// Cadence of RPL housekeeping polls.
    pub rpl_poll_period: SimDuration,
    /// Cadence of the scheduling function's `periodic` hook (GT-TSCH's
    /// load-balancing / slotframe-update timer, §VI).
    pub sf_period: SimDuration,
    /// Root experiment seed; every node and the medium derive their own
    /// streams from it.
    pub seed: u64,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            mac: MacConfig::paper_default(),
            rpl: RplConfig::default(),
            sixtop: SixtopConfig::default(),
            hopping: HoppingSequence::paper_default(),
            eb_period: SimDuration::from_secs(2),
            rpl_poll_period: SimDuration::from_millis(480), // 32 slots
            sf_period: SimDuration::from_secs(2),
            seed: 1,
        }
    }
}

impl EngineConfig {
    /// Validates nested configurations.
    ///
    /// # Panics
    ///
    /// Panics on invalid values.
    pub fn validate(&self) {
        self.mac.validate();
        assert!(!self.eb_period.is_zero(), "EB period must be positive");
        assert!(
            !self.rpl_poll_period.is_zero(),
            "RPL poll period must be positive"
        );
        assert!(!self.sf_period.is_zero(), "SF period must be positive");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid_and_paper_shaped() {
        let cfg = EngineConfig::default();
        cfg.validate();
        assert_eq!(cfg.mac.slot_duration.as_millis(), 15);
        assert_eq!(cfg.eb_period.as_millis(), 2_000);
        assert_eq!(cfg.hopping.len(), 8);
    }

    #[test]
    #[should_panic(expected = "EB period")]
    fn zero_eb_period_rejected() {
        let cfg = EngineConfig {
            eb_period: SimDuration::ZERO,
            ..EngineConfig::default()
        };
        cfg.validate();
    }
}
