//! One measured point of the paper's six series.

use std::fmt;

use serde::{Deserialize, Serialize};

/// The six metrics every figure of §VIII reports, measured for one
/// (scheduler, sweep-point, seed) run or averaged across seeds.
///
/// # Example
///
/// ```
/// use gtt_metrics::FigureRow;
///
/// let a = FigureRow {
///     pdr_percent: 99.0,
///     delay_ms: 210.0,
///     loss_per_min: 1.0,
///     duty_cycle_percent: 8.0,
///     queue_loss: 0.0,
///     received_per_min: 420.0,
/// };
/// let b = FigureRow { pdr_percent: 97.0, ..a };
/// let avg = FigureRow::mean([a, b].iter());
/// assert!((avg.pdr_percent - 98.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct FigureRow {
    /// Packet delivery ratio, % (Figs. 8a/9a/10a).
    pub pdr_percent: f64,
    /// Mean end-to-end delay per delivered packet, ms (Figs. 8b/9b/10b).
    pub delay_ms: f64,
    /// Lost packets per minute, network-wide (Figs. 8c/9c/10c).
    pub loss_per_min: f64,
    /// Mean radio duty cycle per node, % (Figs. 8d/9d/10d).
    pub duty_cycle_percent: f64,
    /// Mean queue loss per node over the run, packets (Figs. 8e/9e/10e).
    pub queue_loss: f64,
    /// Received packets per minute at the roots (Figs. 8f/9f/10f).
    pub received_per_min: f64,
}

impl FigureRow {
    /// Component-wise mean of several rows (seed averaging).
    ///
    /// # Panics
    ///
    /// Panics when `rows` is empty.
    pub fn mean<'a, I: Iterator<Item = &'a FigureRow>>(rows: I) -> FigureRow {
        let mut acc = FigureRow::default();
        let mut n = 0usize;
        for r in rows {
            acc.pdr_percent += r.pdr_percent;
            acc.delay_ms += r.delay_ms;
            acc.loss_per_min += r.loss_per_min;
            acc.duty_cycle_percent += r.duty_cycle_percent;
            acc.queue_loss += r.queue_loss;
            acc.received_per_min += r.received_per_min;
            n += 1;
        }
        assert!(n > 0, "cannot average zero rows");
        let n = n as f64;
        FigureRow {
            pdr_percent: acc.pdr_percent / n,
            delay_ms: acc.delay_ms / n,
            loss_per_min: acc.loss_per_min / n,
            duty_cycle_percent: acc.duty_cycle_percent / n,
            queue_loss: acc.queue_loss / n,
            received_per_min: acc.received_per_min / n,
        }
    }

    /// Header matching [`FigureRow`]'s `Display` columns.
    pub fn header() -> &'static str {
        "   PDR%   delay_ms  loss/min   duty%  queue_loss   recv/min"
    }
}

impl fmt::Display for FigureRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:7.2} {:10.1} {:9.1} {:7.2} {:11.1} {:10.1}",
            self.pdr_percent,
            self.delay_ms,
            self.loss_per_min,
            self.duty_cycle_percent,
            self.queue_loss,
            self.received_per_min
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_averages_every_field() {
        let a = FigureRow {
            pdr_percent: 100.0,
            delay_ms: 100.0,
            loss_per_min: 0.0,
            duty_cycle_percent: 10.0,
            queue_loss: 0.0,
            received_per_min: 600.0,
        };
        let b = FigureRow {
            pdr_percent: 50.0,
            delay_ms: 300.0,
            loss_per_min: 10.0,
            duty_cycle_percent: 20.0,
            queue_loss: 4.0,
            received_per_min: 200.0,
        };
        let m = FigureRow::mean([a, b].iter());
        assert!((m.pdr_percent - 75.0).abs() < 1e-9);
        assert!((m.delay_ms - 200.0).abs() < 1e-9);
        assert!((m.loss_per_min - 5.0).abs() < 1e-9);
        assert!((m.duty_cycle_percent - 15.0).abs() < 1e-9);
        assert!((m.queue_loss - 2.0).abs() < 1e-9);
        assert!((m.received_per_min - 400.0).abs() < 1e-9);
    }

    #[test]
    fn display_aligns_with_header() {
        let r = FigureRow::default();
        // Column count sanity: same number of whitespace-separated fields.
        let cols = FigureRow::header().split_whitespace().count();
        assert_eq!(r.to_string().split_whitespace().count(), cols);
    }

    #[test]
    #[should_panic(expected = "zero rows")]
    fn empty_mean_panics() {
        let _ = FigureRow::mean([].iter());
    }
}
