//! Summary statistics for seed-averaged experiment results.

/// Arithmetic mean; 0.0 for an empty slice.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// Sample standard deviation (n−1 denominator); 0.0 for fewer than two
/// values.
pub fn std_dev(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = mean(values);
    let var = values.iter().map(|v| (v - m).powi(2)).sum::<f64>() / (values.len() - 1) as f64;
    var.sqrt()
}

/// Jain's fairness index over a resource-allocation vector:
/// `J = (Σx)² / (n · Σx²)`.
///
/// Ranges from `1/n` (one node gets everything) to `1.0` (perfectly
/// equal shares). Returns 1.0 for an empty or all-zero vector — nothing
/// was allocated, so nothing was allocated unfairly.
///
/// # Example
///
/// ```
/// use gtt_metrics::jain_index;
/// assert!((jain_index(&[5.0, 5.0, 5.0]) - 1.0).abs() < 1e-12);
/// assert!((jain_index(&[9.0, 0.0, 0.0]) - 1.0 / 3.0).abs() < 1e-12);
/// ```
pub fn jain_index(values: &[f64]) -> f64 {
    let sum: f64 = values.iter().sum();
    let sq: f64 = values.iter().map(|v| v * v).sum();
    if sq == 0.0 {
        return 1.0;
    }
    sum * sum / (values.len() as f64 * sq)
}

/// Incremental mean/variance accumulator (Welford's algorithm).
///
/// # Example
///
/// ```
/// use gtt_metrics::Summary;
///
/// let mut s = Summary::new();
/// for v in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     s.push(v);
/// }
/// assert!((s.mean() - 5.0).abs() < 1e-12);
/// assert!((s.std_dev() - 2.138089935299395).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Summary {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Summary {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds a sample.
    pub fn push(&mut self, value: f64) {
        self.n += 1;
        let delta = value - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (value - self.mean);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sample standard deviation, n−1 denominator (0.0 with < 2 samples).
    pub fn std_dev(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            (self.m2 / (self.n - 1) as f64).sqrt()
        }
    }

    /// Smallest sample (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Largest sample (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }

    /// Half-width of the ~95% confidence interval of the mean, using the
    /// normal approximation (`1.96·σ/√n`). Good enough for the ≥5 seeds
    /// per point the experiments run.
    pub fn ci95_half_width(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            1.96 * self.std_dev() / (self.n as f64).sqrt()
        }
    }
}

impl Extend<f64> for Summary {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for v in iter {
            self.push(v);
        }
    }
}

impl FromIterator<f64> for Summary {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut s = Summary::new();
        s.extend(iter);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std_basic() {
        let vals = [1.0, 2.0, 3.0, 4.0];
        assert!((mean(&vals) - 2.5).abs() < 1e-12);
        // Sample variance = ((1.5)²+(0.5)²+(0.5)²+(1.5)²)/3 = 5/3.
        assert!((std_dev(&vals) - (5.0f64 / 3.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn empty_and_singleton_edge_cases() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(std_dev(&[]), 0.0);
        assert_eq!(std_dev(&[42.0]), 0.0);
        let s = Summary::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
    }

    #[test]
    fn welford_matches_batch() {
        let vals: Vec<f64> = (0..100).map(|i| (i as f64 * 0.37).sin() * 10.0).collect();
        let s: Summary = vals.iter().copied().collect();
        assert!((s.mean() - mean(&vals)).abs() < 1e-9);
        assert!((s.std_dev() - std_dev(&vals)).abs() < 1e-9);
        assert_eq!(s.count(), 100);
    }

    #[test]
    fn min_max_tracked() {
        let s: Summary = [3.0, -1.0, 7.5, 2.0].into_iter().collect();
        assert_eq!(s.min(), Some(-1.0));
        assert_eq!(s.max(), Some(7.5));
    }

    #[test]
    fn jain_index_ranges() {
        assert_eq!(jain_index(&[]), 1.0);
        assert_eq!(jain_index(&[0.0, 0.0]), 1.0);
        assert!((jain_index(&[4.0, 4.0, 4.0, 4.0]) - 1.0).abs() < 1e-12);
        // One of n nodes hogging everything gives exactly 1/n.
        assert!((jain_index(&[0.0, 0.0, 0.0, 8.0]) - 0.25).abs() < 1e-12);
        // Mild skew sits strictly between the extremes.
        let j = jain_index(&[1.0, 2.0, 3.0]);
        assert!(j > 1.0 / 3.0 && j < 1.0, "{j}");
    }

    #[test]
    fn ci_shrinks_with_samples() {
        let few: Summary = [1.0, 2.0, 3.0].into_iter().collect();
        let many: Summary = (0..300).map(|i| (i % 3) as f64 + 1.0).collect();
        assert!(many.ci95_half_width() < few.ci95_half_width());
    }
}
