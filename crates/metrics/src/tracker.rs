//! End-to-end packet tracking.

use std::collections::BTreeMap;

use gtt_net::{NodeId, PacketId};
use gtt_sim::{SimDuration, SimTime};

/// Follows application packets from generation to delivery at a DODAG
/// root.
///
/// A *measurement window* separates warm-up (network formation, schedule
/// convergence) from the steady state the paper measures: packets
/// generated outside the window are still simulated but not counted.
///
/// # Example
///
/// ```
/// use gtt_metrics::PacketTracker;
/// use gtt_net::{NodeId, PacketId};
/// use gtt_sim::SimTime;
///
/// let mut t = PacketTracker::new();
/// t.set_window(SimTime::ZERO, SimTime::from_secs(60));
/// t.record_generated(PacketId::new(0), NodeId::new(3), SimTime::from_secs(1));
/// t.record_delivered(PacketId::new(0), SimTime::from_secs(2), 2);
/// assert_eq!(t.generated(), 1);
/// assert_eq!(t.delivered(), 1);
/// assert!((t.pdr_percent() - 100.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Default)]
pub struct PacketTracker {
    window_start: Option<SimTime>,
    window_end: Option<SimTime>,
    generated: BTreeMap<PacketId, (NodeId, SimTime)>,
    delivered: BTreeMap<PacketId, (SimTime, u8)>,
    duplicates: u64,
    stray_deliveries: u64,
}

/// Counter snapshot for [`PacketTracker::absorb_branch`]: the values the
/// branch trackers started from, so only post-mark deltas are summed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrackerMark {
    duplicates: u64,
    stray_deliveries: u64,
}

impl PacketTracker {
    /// Creates a tracker counting everything (no window).
    pub fn new() -> Self {
        PacketTracker::default()
    }

    /// Restricts accounting to packets generated in `[start, end)`.
    ///
    /// Packets already recorded outside the window are purged (with
    /// their deliveries), so the usual warm-up → `set_window` → measure
    /// sequence never leaks formation-phase traffic into the report.
    ///
    /// # Panics
    ///
    /// Panics if `end <= start`.
    pub fn set_window(&mut self, start: SimTime, end: SimTime) {
        assert!(end > start, "measurement window must be non-empty");
        self.window_start = Some(start);
        self.window_end = Some(end);
        self.generated
            .retain(|_, (_, t_gen)| *t_gen >= start && *t_gen < end);
        let generated = &self.generated;
        self.delivered.retain(|id, _| generated.contains_key(id));
    }

    /// The measurement window length, if configured.
    pub fn window(&self) -> Option<SimDuration> {
        match (self.window_start, self.window_end) {
            (Some(s), Some(e)) => Some(e - s),
            _ => None,
        }
    }

    fn in_window(&self, t: SimTime) -> bool {
        match (self.window_start, self.window_end) {
            (Some(s), Some(e)) => t >= s && t < e,
            _ => true,
        }
    }

    /// Records a packet generated at `origin`.
    pub fn record_generated(&mut self, id: PacketId, origin: NodeId, now: SimTime) {
        if !self.in_window(now) {
            return;
        }
        self.generated.insert(id, (origin, now));
    }

    /// Records a packet delivered to a root after `hops` link-layer hops.
    ///
    /// Deliveries of untracked packets (generated outside the window) are
    /// ignored; duplicate deliveries are counted separately and do not
    /// inflate PDR.
    pub fn record_delivered(&mut self, id: PacketId, now: SimTime, hops: u8) {
        if !self.generated.contains_key(&id) {
            self.stray_deliveries += 1;
            return;
        }
        if self.delivered.contains_key(&id) {
            self.duplicates += 1;
            return;
        }
        self.delivered.insert(id, (now, hops));
    }

    /// Packets generated inside the window.
    pub fn generated(&self) -> u64 {
        self.generated.len() as u64
    }

    /// Tracked packets delivered to a root.
    pub fn delivered(&self) -> u64 {
        self.delivered.len() as u64
    }

    /// Tracked packets never delivered.
    pub fn lost(&self) -> u64 {
        self.generated() - self.delivered()
    }

    /// Duplicate root deliveries observed.
    pub fn duplicates(&self) -> u64 {
        self.duplicates
    }

    /// Deliveries of packets generated outside the window.
    pub fn stray_deliveries(&self) -> u64 {
        self.stray_deliveries
    }

    /// Packet delivery ratio in percent (100 when nothing was generated).
    pub fn pdr_percent(&self) -> f64 {
        if self.generated.is_empty() {
            return 100.0;
        }
        100.0 * self.delivered.len() as f64 / self.generated.len() as f64
    }

    /// Mean end-to-end delay of delivered packets, in milliseconds.
    pub fn mean_delay_ms(&self) -> f64 {
        if self.delivered.is_empty() {
            return 0.0;
        }
        let total: f64 = self
            .delivered
            .iter()
            .map(|(id, (t_rx, _))| {
                let (_, t_gen) = self.generated[id];
                t_rx.saturating_since(t_gen).as_millis_f64()
            })
            .sum();
        total / self.delivered.len() as f64
    }

    /// Mean hop count of delivered packets.
    pub fn mean_hops(&self) -> f64 {
        if self.delivered.is_empty() {
            return 0.0;
        }
        let total: u64 = self.delivered.values().map(|(_, h)| *h as u64).sum();
        total as f64 / self.delivered.len() as f64
    }

    /// Lost packets per minute of measurement window.
    ///
    /// # Panics
    ///
    /// Panics if no window was configured (rate metrics need a duration).
    pub fn loss_per_minute(&self) -> f64 {
        let w = self.window().expect("loss_per_minute needs a window");
        self.lost() as f64 / (w.as_secs_f64() / 60.0)
    }

    /// Delivered packets per minute of measurement window (throughput).
    ///
    /// # Panics
    ///
    /// Panics if no window was configured.
    pub fn received_per_minute(&self) -> f64 {
        let w = self.window().expect("received_per_minute needs a window");
        self.delivered() as f64 / (w.as_secs_f64() / 60.0)
    }

    /// A counter snapshot taken before cloning the tracker into
    /// parallel branches; see [`PacketTracker::absorb_branch`].
    pub fn mark(&self) -> TrackerMark {
        TrackerMark {
            duplicates: self.duplicates,
            stray_deliveries: self.stray_deliveries,
        }
    }

    /// Folds a branch tracker (a clone of `self` taken at `mark` that
    /// has since recorded more packets) back into `self`.
    ///
    /// Map entries are unioned: entries present in both are identical
    /// clones of the shared prefix, and entries recorded by different
    /// branches are disjoint when packet ids are origin-keyed and each
    /// origin/root lives in exactly one branch (the partition-island
    /// invariant). For the counters, the delta each branch accumulated
    /// past the mark is added, so parallel branches never double-count
    /// the shared prefix.
    pub fn absorb_branch(&mut self, branch: PacketTracker, mark: &TrackerMark) {
        debug_assert_eq!(self.window_start, branch.window_start);
        debug_assert_eq!(self.window_end, branch.window_end);
        self.generated.extend(branch.generated);
        for (id, (t_rx, hops)) in branch.delivered {
            self.delivered.entry(id).or_insert((t_rx, hops));
        }
        self.duplicates += branch.duplicates - mark.duplicates;
        self.stray_deliveries += branch.stray_deliveries - mark.stray_deliveries;
    }

    /// Per-origin delivery counts (diagnostics: spotting starved nodes).
    pub fn delivered_by_origin(&self) -> BTreeMap<NodeId, u64> {
        let mut map = BTreeMap::new();
        for (id, _) in self.delivered.iter() {
            let (origin, _) = self.generated[id];
            *map.entry(origin).or_insert(0) += 1;
        }
        map
    }

    /// Per-origin generation counts.
    pub fn generated_by_origin(&self) -> BTreeMap<NodeId, u64> {
        let mut map = BTreeMap::new();
        for (origin, _) in self.generated.values() {
            *map.entry(*origin).or_insert(0) += 1;
        }
        map
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(n: u64) -> PacketId {
        PacketId::new(n)
    }

    #[test]
    fn pdr_and_loss_accounting() {
        let mut t = PacketTracker::new();
        t.set_window(SimTime::ZERO, SimTime::from_secs(60));
        for i in 0..10 {
            t.record_generated(id(i), NodeId::new(1), SimTime::from_secs(i));
        }
        for i in 0..7 {
            t.record_delivered(id(i), SimTime::from_secs(i + 1), 2);
        }
        assert_eq!(t.generated(), 10);
        assert_eq!(t.delivered(), 7);
        assert_eq!(t.lost(), 3);
        assert!((t.pdr_percent() - 70.0).abs() < 1e-9);
        assert!((t.loss_per_minute() - 3.0).abs() < 1e-9);
        assert!((t.received_per_minute() - 7.0).abs() < 1e-9);
    }

    #[test]
    fn delay_is_averaged_over_delivered_only() {
        let mut t = PacketTracker::new();
        t.record_generated(id(1), NodeId::new(1), SimTime::from_millis(0));
        t.record_generated(id(2), NodeId::new(1), SimTime::from_millis(0));
        t.record_generated(id(3), NodeId::new(1), SimTime::from_millis(0));
        t.record_delivered(id(1), SimTime::from_millis(100), 1);
        t.record_delivered(id(2), SimTime::from_millis(300), 3);
        // id 3 lost.
        assert!((t.mean_delay_ms() - 200.0).abs() < 1e-9);
        assert!((t.mean_hops() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn warmup_packets_excluded() {
        let mut t = PacketTracker::new();
        t.set_window(SimTime::from_secs(10), SimTime::from_secs(70));
        t.record_generated(id(1), NodeId::new(1), SimTime::from_secs(5)); // warm-up
        t.record_generated(id(2), NodeId::new(1), SimTime::from_secs(15));
        t.record_delivered(id(1), SimTime::from_secs(16), 1); // stray
        t.record_delivered(id(2), SimTime::from_secs(16), 1);
        assert_eq!(t.generated(), 1);
        assert_eq!(t.delivered(), 1);
        assert_eq!(t.stray_deliveries(), 1);
    }

    #[test]
    fn set_window_purges_previously_recorded_warmup() {
        // The engine records from t=0 and only then brackets the window:
        // pre-window packets (and their deliveries) must be dropped.
        let mut t = PacketTracker::new();
        t.record_generated(id(1), NodeId::new(1), SimTime::from_secs(5));
        t.record_delivered(id(1), SimTime::from_secs(6), 1);
        t.record_generated(id(2), NodeId::new(1), SimTime::from_secs(20));
        t.record_delivered(id(2), SimTime::from_secs(21), 1);
        t.set_window(SimTime::from_secs(10), SimTime::from_secs(70));
        assert_eq!(t.generated(), 1, "warm-up packet purged");
        assert_eq!(t.delivered(), 1, "warm-up delivery purged");
        // Re-tightening the window later (finish_measurement) keeps
        // in-window packets.
        t.set_window(SimTime::from_secs(10), SimTime::from_secs(30));
        assert_eq!(t.generated(), 1);
    }

    #[test]
    fn duplicates_do_not_inflate_pdr() {
        let mut t = PacketTracker::new();
        t.record_generated(id(1), NodeId::new(1), SimTime::ZERO);
        t.record_delivered(id(1), SimTime::from_secs(1), 1);
        t.record_delivered(id(1), SimTime::from_secs(2), 1);
        assert_eq!(t.delivered(), 1);
        assert_eq!(t.duplicates(), 1);
        assert!((t.pdr_percent() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn per_origin_breakdowns() {
        let mut t = PacketTracker::new();
        t.record_generated(id(1), NodeId::new(1), SimTime::ZERO);
        t.record_generated(id(2), NodeId::new(2), SimTime::ZERO);
        t.record_generated(id(3), NodeId::new(2), SimTime::ZERO);
        t.record_delivered(id(3), SimTime::from_secs(1), 1);
        assert_eq!(t.generated_by_origin()[&NodeId::new(2)], 2);
        assert_eq!(t.delivered_by_origin()[&NodeId::new(2)], 1);
        assert!(!t.delivered_by_origin().contains_key(&NodeId::new(1)));
    }

    #[test]
    fn absorb_branch_unions_without_double_counting() {
        let mut t = PacketTracker::new();
        t.set_window(SimTime::ZERO, SimTime::from_secs(60));
        // Shared prefix: one packet, one duplicate, one stray.
        t.record_generated(id(1), NodeId::new(1), SimTime::from_secs(1));
        t.record_delivered(id(1), SimTime::from_secs(2), 1);
        t.record_delivered(id(1), SimTime::from_secs(3), 1); // duplicate
        t.record_delivered(id(99), SimTime::from_secs(3), 1); // stray
        let mark = t.mark();
        // Two branches clone the prefix and diverge (disjoint ids).
        let mut a = t.clone();
        let mut b = t.clone();
        a.record_generated(id(2), NodeId::new(2), SimTime::from_secs(4));
        a.record_delivered(id(2), SimTime::from_secs(5), 2);
        a.record_delivered(id(2), SimTime::from_secs(6), 2); // duplicate
        b.record_generated(id(3), NodeId::new(3), SimTime::from_secs(4));
        b.record_delivered(id(77), SimTime::from_secs(5), 1); // stray
        t.absorb_branch(a, &mark);
        t.absorb_branch(b, &mark);
        assert_eq!(t.generated(), 3);
        assert_eq!(t.delivered(), 2);
        assert_eq!(t.duplicates(), 2, "prefix duplicate counted once");
        assert_eq!(t.stray_deliveries(), 2, "prefix stray counted once");
    }

    #[test]
    fn empty_tracker_defaults() {
        let t = PacketTracker::new();
        assert_eq!(t.pdr_percent(), 100.0);
        assert_eq!(t.mean_delay_ms(), 0.0);
        assert_eq!(t.mean_hops(), 0.0);
    }

    #[test]
    #[should_panic(expected = "needs a window")]
    fn rate_without_window_panics() {
        let t = PacketTracker::new();
        let _ = t.loss_per_minute();
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_window_rejected() {
        let mut t = PacketTracker::new();
        t.set_window(SimTime::from_secs(5), SimTime::from_secs(5));
    }
}
