//! End-to-end packet tracking.
//!
//! The tracker exploits the engine's origin-keyed packet ids
//! (`origin << 48 | seq`, with `seq` assigned monotonically per origin):
//! instead of a map keyed by packet id, it keeps one lane per origin in
//! a dense, offset-anchored `Vec`, and each lane stores a
//! generation-time *column* indexed by sequence number plus a delivered
//! *bitset* (one bit per packet). Both record paths are O(1) — no tree
//! or hash lookup — and steady-state memory is ~9 bytes per tracked
//! packet (8-byte generation time + 1 delivered bit) plus a fixed
//! per-lane header, an order of magnitude below the old per-packet
//! `BTreeMap` nodes.
//!
//! Delay and hop statistics are *streaming* ([`DelayStats`]): integer
//! nanosecond sums in `u128`, min/max, and a fixed-bin histogram for
//! percentiles. Integer sums are summation-order-independent, which is
//! what keeps `NetworkReport`s byte-identical across sequential,
//! island-parallel and naive-step oracle runs (see DETERMINISM.md).

use std::collections::BTreeMap;

use gtt_net::{NodeId, PacketId};
use gtt_sim::{SimDuration, SimTime};

/// Bits of a [`PacketId`] holding the per-origin sequence number; the
/// remaining high bits are the origin's node index.
const SEQ_BITS: u32 = 48;
const SEQ_MASK: u64 = (1 << SEQ_BITS) - 1;

/// Column sentinel: no packet recorded at this sequence slot.
const HOLE: SimTime = SimTime::MAX;

fn split_id(id: PacketId) -> (u64, u64) {
    (id.raw() >> SEQ_BITS, id.raw() & SEQ_MASK)
}

// ---------------------------------------------------------------- bitset

fn bit_get(bits: &[u64], i: usize) -> bool {
    bits.get(i / 64).is_some_and(|w| w & (1 << (i % 64)) != 0)
}

fn bit_set(bits: &mut Vec<u64>, i: usize) {
    let word = i / 64;
    if word >= bits.len() {
        bits.resize(word + 1, 0);
    }
    bits[word] |= 1 << (i % 64);
}

// ------------------------------------------------------------ histogram

/// Number of fixed delay-histogram bins (see [`DelayStats::bins`]).
///
/// Bins 0..8 are exact microseconds; past that, each power-of-two octave
/// splits into 4 sub-bins (≤ 25% relative resolution), which covers the
/// full `u64` microsecond range in `8 + 61·4 = 252` bins.
pub const DELAY_BINS: usize = 252;

fn delay_bin(d_us: u64) -> usize {
    if d_us < 8 {
        return d_us as usize;
    }
    let o = 63 - u64::from(d_us.leading_zeros()); // octave, >= 3
    let sub = (d_us >> (o - 2)) & 3;
    let b = 8 + (o - 3) * 4 + sub;
    (b as usize).min(DELAY_BINS - 1)
}

/// Upper edge of bin `b`, in microseconds (saturating for the top bin).
fn bin_upper_us(b: usize) -> u64 {
    if b < 8 {
        return b as u64 + 1;
    }
    let k = (b - 8) as u64;
    let o = 3 + k / 4;
    let sub = k % 4;
    let edge = (1u128 << o) + u128::from(sub + 1) * (1u128 << (o - 2));
    u64::try_from(edge).unwrap_or(u64::MAX)
}

// ----------------------------------------------------------- delay stats

/// Streaming end-to-end delay and hop statistics over delivered packets.
///
/// All accumulators are integers (nanosecond sums in `u128`, bin
/// counts), so the aggregate is independent of the order deliveries were
/// recorded in — parallel branches merge exactly (see
/// [`PacketTracker::absorb_branch`]). Percentiles come from the
/// fixed-bin histogram and report the upper edge of the matched bin
/// (≤ 25% relative error by construction).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DelayStats {
    count: u64,
    sum_ns: u128,
    min_us: u64,
    max_us: u64,
    hops_sum: u64,
    bins: [u64; DELAY_BINS],
}

impl Default for DelayStats {
    fn default() -> Self {
        DelayStats {
            count: 0,
            sum_ns: 0,
            min_us: u64::MAX,
            max_us: 0,
            hops_sum: 0,
            bins: [0; DELAY_BINS],
        }
    }
}

impl DelayStats {
    fn record(&mut self, delay: SimDuration, hops: u8) {
        let us = delay.as_micros();
        self.count += 1;
        self.sum_ns += u128::from(us) * 1_000;
        self.min_us = self.min_us.min(us);
        self.max_us = self.max_us.max(us);
        self.hops_sum += u64::from(hops);
        self.bins[delay_bin(us)] += 1;
    }

    /// Adds a branch's post-`mark` delta into `self`: counts, sums and
    /// bins by integer difference, min/max idempotently. Exact because
    /// every accumulator is an integer.
    fn absorb_delta(&mut self, branch: &DelayStats, mark: &DelayStats) {
        self.count += branch.count - mark.count;
        self.sum_ns += branch.sum_ns - mark.sum_ns;
        self.hops_sum += branch.hops_sum - mark.hops_sum;
        self.min_us = self.min_us.min(branch.min_us);
        self.max_us = self.max_us.max(branch.max_us);
        for (s, (b, m)) in self
            .bins
            .iter_mut()
            .zip(branch.bins.iter().zip(mark.bins.iter()))
        {
            *s += b - m;
        }
    }

    /// Delivered packets the statistics cover.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean end-to-end delay in milliseconds (0.0 when empty).
    pub fn mean_ms(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        (self.sum_ns as f64 / 1e6) / self.count as f64
    }

    /// Mean hop count (0.0 when empty).
    pub fn mean_hops(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        self.hops_sum as f64 / self.count as f64
    }

    /// Smallest observed delay in milliseconds (`None` when empty).
    pub fn min_ms(&self) -> Option<f64> {
        (self.count > 0).then(|| self.min_us as f64 / 1e3)
    }

    /// Largest observed delay in milliseconds (`None` when empty).
    pub fn max_ms(&self) -> Option<f64> {
        (self.count > 0).then(|| self.max_us as f64 / 1e3)
    }

    /// The `p`-th percentile delay in milliseconds, from the histogram
    /// (upper edge of the matched bin; 0.0 when empty).
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 100.0`.
    pub fn percentile_ms(&self, p: f64) -> f64 {
        assert!((0.0..=100.0).contains(&p), "percentile must be in 0..=100");
        if self.count == 0 {
            return 0.0;
        }
        let rank = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut cum = 0u64;
        for (b, n) in self.bins.iter().enumerate() {
            cum += n;
            if cum >= rank {
                return bin_upper_us(b) as f64 / 1e3;
            }
        }
        self.max_us as f64 / 1e3
    }

    /// The raw histogram bins (see [`DELAY_BINS`] for the layout).
    pub fn bins(&self) -> &[u64; DELAY_BINS] {
        &self.bins
    }
}

// ----------------------------------------------------------- origin lane

/// Per-origin packet state: a generation-time column indexed by
/// `seq - seq_base` (with [`HOLE`] sentinels for never-recorded or
/// purged slots) and a delivered bitset over the same slots.
#[derive(Debug, Default, PartialEq)]
struct OriginLane {
    seq_base: u64,
    gen: Vec<SimTime>,
    delivered: Vec<u64>,
    generated: u64,
    delivered_count: u64,
    /// Conservative bounds on the live generation times (used only for
    /// the O(1) purge fast paths; re-recording a slot may widen them).
    min_gen: SimTime,
    max_gen: SimTime,
}

impl Clone for OriginLane {
    fn clone(&self) -> Self {
        OriginLane {
            seq_base: self.seq_base,
            gen: self.gen.clone(),
            delivered: self.delivered.clone(),
            generated: self.generated,
            delivered_count: self.delivered_count,
            min_gen: self.min_gen,
            max_gen: self.max_gen,
        }
    }

    /// Reuses the column allocations — island shells are refreshed with
    /// `clone_from` every window (see `refresh_island_shell`).
    fn clone_from(&mut self, src: &Self) {
        self.seq_base = src.seq_base;
        self.gen.clone_from(&src.gen);
        self.delivered.clone_from(&src.delivered);
        self.generated = src.generated;
        self.delivered_count = src.delivered_count;
        self.min_gen = src.min_gen;
        self.max_gen = src.max_gen;
    }
}

impl OriginLane {
    fn new_empty_bounds() -> (SimTime, SimTime) {
        (HOLE, SimTime::ZERO)
    }

    /// Column slot for `seq`, growing the column (and shifting the
    /// bitset) as needed. Front growth only happens on out-of-order
    /// generic use — the engine's per-origin seqs are monotonic.
    fn slot_for(&mut self, seq: u64) -> usize {
        if self.gen.is_empty() {
            self.seq_base = seq;
            self.gen.push(HOLE);
            return 0;
        }
        if seq < self.seq_base {
            let k = (self.seq_base - seq) as usize;
            self.gen.splice(0..0, std::iter::repeat(HOLE).take(k));
            // Shift every delivered bit up by k (slot i -> i + k).
            let mut shifted = vec![0u64; self.gen.len().div_ceil(64)];
            for (w, word) in self.delivered.iter().enumerate() {
                let mut word = *word;
                while word != 0 {
                    let bit = word.trailing_zeros() as usize;
                    word &= word - 1;
                    let j = w * 64 + bit + k;
                    shifted[j / 64] |= 1 << (j % 64);
                }
            }
            self.delivered = shifted;
            self.seq_base = seq;
            return 0;
        }
        let i = (seq - self.seq_base) as usize;
        if i >= self.gen.len() {
            self.gen.resize(i + 1, HOLE);
        }
        i
    }

    /// One-pass purge to generation times in `[start, end)`, with O(1)
    /// full-keep and full-drop fast paths off the lane's time bounds.
    /// Returns `(dropped_generated, dropped_delivered)`.
    fn purge(&mut self, start: SimTime, end: SimTime) -> (u64, u64) {
        if self.generated == 0 {
            if !self.gen.is_empty() {
                self.clear();
            }
            return (0, 0);
        }
        if self.min_gen >= start && self.max_gen < end {
            // Full keep: nothing to scan; release slack capacity so the
            // footprint reflects live state.
            self.gen.shrink_to_fit();
            self.delivered.shrink_to_fit();
            return (0, 0);
        }
        if self.max_gen < start || self.min_gen >= end {
            let dropped = (self.generated, self.delivered_count);
            self.clear();
            return dropped;
        }
        // General case: one pass marking out-of-window slots as holes,
        // then trim the hole margins (advancing seq_base) and rebuild
        // the bitset over the kept range.
        let mut dropped_gen = 0u64;
        let mut dropped_del = 0u64;
        let (mut min_gen, mut max_gen) = Self::new_empty_bounds();
        let mut first_keep = usize::MAX;
        let mut last_keep = 0usize;
        for i in 0..self.gen.len() {
            let t = self.gen[i];
            if t == HOLE {
                continue;
            }
            if t >= start && t < end {
                min_gen = min_gen.min(t);
                max_gen = max_gen.max(t);
                first_keep = first_keep.min(i);
                last_keep = i;
            } else {
                dropped_gen += 1;
                if bit_get(&self.delivered, i) {
                    dropped_del += 1;
                }
                self.gen[i] = HOLE;
            }
        }
        if first_keep == usize::MAX {
            self.clear();
            return (dropped_gen, dropped_del);
        }
        let len = last_keep - first_keep + 1;
        let mut kept_bits = vec![0u64; len.div_ceil(64)];
        let mut kept_del = 0u64;
        for i in first_keep..=last_keep {
            if self.gen[i] != HOLE && bit_get(&self.delivered, i) {
                let j = i - first_keep;
                kept_bits[j / 64] |= 1 << (j % 64);
                kept_del += 1;
            }
        }
        self.gen.copy_within(first_keep..=last_keep, 0);
        self.gen.truncate(len);
        self.gen.shrink_to_fit();
        self.delivered = kept_bits;
        self.seq_base += first_keep as u64;
        self.generated -= dropped_gen;
        self.delivered_count = kept_del;
        self.min_gen = min_gen;
        self.max_gen = max_gen;
        (dropped_gen, dropped_del)
    }

    fn clear(&mut self) {
        self.seq_base = 0;
        self.gen = Vec::new();
        self.delivered = Vec::new();
        self.generated = 0;
        self.delivered_count = 0;
        (self.min_gen, self.max_gen) = Self::new_empty_bounds();
    }
}

// -------------------------------------------------------------- tracker

/// Follows application packets from generation to delivery at a DODAG
/// root.
///
/// A *measurement window* separates warm-up (network formation, schedule
/// convergence) from the steady state the paper measures: packets
/// generated outside the window are still simulated but not counted.
///
/// Packet ids must be origin-keyed (`origin << 48 | seq`, as
/// `Network::apply_upkeep` assigns them): the high bits select the
/// origin's lane, the low bits its column slot. Generation times must be
/// strictly below [`SimTime::MAX`] (the column's hole sentinel).
///
/// Delay/hop statistics are streaming ([`DelayStats`]) and cannot be
/// re-derived for purged packets: when [`PacketTracker::set_window`]
/// drops a *delivered* packet, they reset to empty. The engine's
/// warm-up → `start_measurement` → `finish_measurement` pattern only
/// purges before any measured delivery exists, so reported statistics
/// are exact.
///
/// # Example
///
/// ```
/// use gtt_metrics::PacketTracker;
/// use gtt_net::{NodeId, PacketId};
/// use gtt_sim::SimTime;
///
/// let origin = NodeId::new(3);
/// let id = PacketId::new((origin.index() as u64) << 48);
/// let mut t = PacketTracker::new();
/// t.set_window(SimTime::ZERO, SimTime::from_secs(60));
/// t.record_generated(id, origin, SimTime::from_secs(1));
/// t.record_delivered(id, SimTime::from_secs(2), 2);
/// assert_eq!(t.generated(), 1);
/// assert_eq!(t.delivered(), 1);
/// assert!((t.pdr_percent() - 100.0).abs() < 1e-9);
/// ```
#[derive(Debug, Default, PartialEq)]
pub struct PacketTracker {
    window_start: Option<SimTime>,
    window_end: Option<SimTime>,
    /// Origin index of `lanes[0]` (offset-anchored dense vector).
    first_track: u64,
    lanes: Vec<OriginLane>,
    generated_total: u64,
    delivered_total: u64,
    duplicates: u64,
    stray_deliveries: u64,
    delay: DelayStats,
}

impl Clone for PacketTracker {
    fn clone(&self) -> Self {
        PacketTracker {
            window_start: self.window_start,
            window_end: self.window_end,
            first_track: self.first_track,
            lanes: self.lanes.clone(),
            generated_total: self.generated_total,
            delivered_total: self.delivered_total,
            duplicates: self.duplicates,
            stray_deliveries: self.stray_deliveries,
            delay: self.delay.clone(),
        }
    }

    /// Reuses lane and column allocations (`Vec::clone_from` calls
    /// `OriginLane::clone_from` element-wise) — the island-shell pool
    /// refreshes its tracker with this every window.
    fn clone_from(&mut self, src: &Self) {
        self.window_start = src.window_start;
        self.window_end = src.window_end;
        self.first_track = src.first_track;
        self.lanes.clone_from(&src.lanes);
        self.generated_total = src.generated_total;
        self.delivered_total = src.delivered_total;
        self.duplicates = src.duplicates;
        self.stray_deliveries = src.stray_deliveries;
        self.delay.clone_from(&src.delay);
    }
}

/// Snapshot for [`PacketTracker::absorb_branch`]: the counter and
/// delay-statistics values the branch trackers started from, so only
/// post-mark deltas are folded back in.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrackerMark {
    duplicates: u64,
    stray_deliveries: u64,
    delay: DelayStats,
}

/// Memory accounting for a [`PacketTracker`] (see
/// [`PacketTracker::footprint`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrackerFootprint {
    /// Total retained heap + inline bytes (lane headers, generation-time
    /// columns, delivered bitsets), computed from vector capacities.
    pub bytes: usize,
    /// Allocated origin lanes.
    pub lanes: usize,
    /// Packets currently tracked (generated inside the window).
    pub tracked: u64,
    /// Retained column slots, holes included (`>= tracked`).
    pub live: u64,
}

impl TrackerFootprint {
    /// Bytes per tracked packet — the city-scale memory gate's metric.
    pub fn bytes_per_tracked(&self) -> f64 {
        self.bytes as f64 / self.tracked.max(1) as f64
    }
}

impl PacketTracker {
    /// Creates a tracker counting everything (no window).
    pub fn new() -> Self {
        PacketTracker::default()
    }

    /// Restricts accounting to packets generated in `[start, end)`.
    ///
    /// Packets already recorded outside the window are purged (with
    /// their deliveries), so the usual warm-up → `set_window` → measure
    /// sequence never leaks formation-phase traffic into the report.
    /// The purge is a single pass per lane with O(1) full-keep /
    /// full-drop fast paths, so repeated warm-up → window cycles never
    /// re-scan delivered state quadratically. If any *delivered* packet
    /// is purged, the streaming delay statistics reset (see the type
    /// docs).
    ///
    /// # Panics
    ///
    /// Panics if `end <= start`.
    pub fn set_window(&mut self, start: SimTime, end: SimTime) {
        assert!(end > start, "measurement window must be non-empty");
        self.window_start = Some(start);
        self.window_end = Some(end);
        let mut dropped_gen = 0u64;
        let mut dropped_del = 0u64;
        for lane in &mut self.lanes {
            let (g, d) = lane.purge(start, end);
            dropped_gen += g;
            dropped_del += d;
        }
        self.generated_total -= dropped_gen;
        self.delivered_total -= dropped_del;
        if dropped_del > 0 {
            self.delay = DelayStats::default();
        }
        self.lanes.shrink_to_fit();
    }

    /// The measurement window length, if configured.
    pub fn window(&self) -> Option<SimDuration> {
        match (self.window_start, self.window_end) {
            (Some(s), Some(e)) => Some(e - s),
            _ => None,
        }
    }

    fn in_window(&self, t: SimTime) -> bool {
        match (self.window_start, self.window_end) {
            (Some(s), Some(e)) => t >= s && t < e,
            _ => true,
        }
    }

    fn lane_index(&self, track: u64) -> Option<usize> {
        if self.lanes.is_empty() || track < self.first_track {
            return None;
        }
        let i = (track - self.first_track) as usize;
        (i < self.lanes.len()).then_some(i)
    }

    fn lane_for(&mut self, track: u64) -> &mut OriginLane {
        if self.lanes.is_empty() {
            self.first_track = track;
            self.lanes.push(OriginLane::default());
        } else if track < self.first_track {
            let k = (self.first_track - track) as usize;
            self.lanes
                .splice(0..0, (0..k).map(|_| OriginLane::default()));
            self.first_track = track;
        } else {
            let i = (track - self.first_track) as usize;
            if i >= self.lanes.len() {
                self.lanes.resize_with(i + 1, OriginLane::default);
            }
        }
        let i = (track - self.first_track) as usize;
        &mut self.lanes[i]
    }

    /// Records a packet generated at `origin` — O(1).
    ///
    /// `origin` must match the id's high bits (debug-asserted); the lane
    /// is selected from the id so generic callers cannot desynchronize
    /// the two. Re-recording an already-tracked id updates its
    /// generation time without double-counting.
    pub fn record_generated(&mut self, id: PacketId, origin: NodeId, now: SimTime) {
        let (track, seq) = split_id(id);
        debug_assert_eq!(
            track,
            origin.index() as u64,
            "packet id origin bits must match the origin node"
        );
        debug_assert!(now < SimTime::MAX, "generation time must be below MAX");
        if !self.in_window(now) {
            return;
        }
        let lane = self.lane_for(track);
        let slot = lane.slot_for(seq);
        let fresh = lane.gen[slot] == HOLE;
        if fresh {
            lane.generated += 1;
        }
        lane.gen[slot] = now;
        lane.min_gen = lane.min_gen.min(now);
        lane.max_gen = lane.max_gen.max(now);
        if fresh {
            self.generated_total += 1;
        }
    }

    /// Records a packet delivered to a root after `hops` link-layer
    /// hops — O(1).
    ///
    /// Deliveries of untracked packets (generated outside the window) are
    /// counted as strays; duplicate deliveries are counted separately and
    /// do not inflate PDR.
    pub fn record_delivered(&mut self, id: PacketId, now: SimTime, hops: u8) {
        let (track, seq) = split_id(id);
        let Some(li) = self.lane_index(track) else {
            self.stray_deliveries += 1;
            return;
        };
        let lane = &mut self.lanes[li];
        if lane.gen.is_empty() || seq < lane.seq_base {
            self.stray_deliveries += 1;
            return;
        }
        let i = (seq - lane.seq_base) as usize;
        if i >= lane.gen.len() || lane.gen[i] == HOLE {
            self.stray_deliveries += 1;
            return;
        }
        if bit_get(&lane.delivered, i) {
            self.duplicates += 1;
            return;
        }
        bit_set(&mut lane.delivered, i);
        lane.delivered_count += 1;
        self.delivered_total += 1;
        self.delay.record(now.saturating_since(lane.gen[i]), hops);
    }

    /// Packets generated inside the window.
    pub fn generated(&self) -> u64 {
        self.generated_total
    }

    /// Tracked packets delivered to a root.
    pub fn delivered(&self) -> u64 {
        self.delivered_total
    }

    /// Tracked packets never delivered.
    pub fn lost(&self) -> u64 {
        self.generated_total - self.delivered_total
    }

    /// Duplicate root deliveries observed.
    pub fn duplicates(&self) -> u64 {
        self.duplicates
    }

    /// Deliveries of packets generated outside the window.
    pub fn stray_deliveries(&self) -> u64 {
        self.stray_deliveries
    }

    /// Packet delivery ratio in percent (100 when nothing was generated).
    pub fn pdr_percent(&self) -> f64 {
        if self.generated_total == 0 {
            return 100.0;
        }
        100.0 * self.delivered_total as f64 / self.generated_total as f64
    }

    /// The streaming delay/hop statistics over delivered packets.
    pub fn delay_stats(&self) -> &DelayStats {
        &self.delay
    }

    /// Mean end-to-end delay of delivered packets, in milliseconds.
    pub fn mean_delay_ms(&self) -> f64 {
        self.delay.mean_ms()
    }

    /// Mean hop count of delivered packets.
    pub fn mean_hops(&self) -> f64 {
        self.delay.mean_hops()
    }

    /// Lost packets per minute of measurement window.
    ///
    /// # Panics
    ///
    /// Panics if no window was configured (rate metrics need a duration).
    pub fn loss_per_minute(&self) -> f64 {
        let w = self.window().expect("loss_per_minute needs a window");
        self.lost() as f64 / (w.as_secs_f64() / 60.0)
    }

    /// Delivered packets per minute of measurement window (throughput).
    ///
    /// # Panics
    ///
    /// Panics if no window was configured.
    pub fn received_per_minute(&self) -> f64 {
        let w = self.window().expect("received_per_minute needs a window");
        self.delivered() as f64 / (w.as_secs_f64() / 60.0)
    }

    /// A snapshot taken before cloning the tracker into parallel
    /// branches; see [`PacketTracker::absorb_branch`].
    pub fn mark(&self) -> TrackerMark {
        TrackerMark {
            duplicates: self.duplicates,
            stray_deliveries: self.stray_deliveries,
            delay: self.delay.clone(),
        }
    }

    /// Folds a branch tracker (a clone of `self` taken at `mark` that
    /// has since recorded more packets for `members` only) back into
    /// `self`.
    ///
    /// Member lanes are swapped in wholesale: packets from an origin are
    /// generated *and* delivered inside that origin's audibility island
    /// (the routing path never leaves it), so the branch's lane for a
    /// member is a strict superset of the shared prefix `self` still
    /// holds, and islands being disjoint means no other branch touched
    /// it. The branch is taken by `&mut` so the stale prefix buffers it
    /// receives in the swap stay with the pooled island shell, where the
    /// next window's `clone_from` refresh recycles them. Global counters
    /// and delay statistics add the branch's post-mark delta; every
    /// accumulator is an integer, so the merged result is independent of
    /// merge order — DETERMINISM.md's canonical island order keeps even
    /// the degenerate corner cases a pure function of the experiment.
    pub fn absorb_branch(
        &mut self,
        branch: &mut PacketTracker,
        mark: &TrackerMark,
        members: &[NodeId],
    ) {
        debug_assert_eq!(self.window_start, branch.window_start);
        debug_assert_eq!(self.window_end, branch.window_end);
        for &m in members {
            let track = m.index() as u64;
            let Some(bi) = branch.lane_index(track) else {
                continue;
            };
            let bl = &mut branch.lanes[bi];
            if bl.gen.is_empty() {
                continue;
            }
            let sl = self.lane_for(track);
            let d_gen = bl.generated - sl.generated;
            let d_del = bl.delivered_count - sl.delivered_count;
            std::mem::swap(sl, bl);
            self.generated_total += d_gen;
            self.delivered_total += d_del;
        }
        self.duplicates += branch.duplicates - mark.duplicates;
        self.stray_deliveries += branch.stray_deliveries - mark.stray_deliveries;
        self.delay.absorb_delta(&branch.delay, &mark.delay);
    }

    /// Per-origin `(generated, delivered)` counts — O(1).
    pub fn origin_stats(&self, origin: NodeId) -> (u64, u64) {
        match self.lane_index(origin.index() as u64) {
            Some(i) => {
                let lane = &self.lanes[i];
                (lane.generated, lane.delivered_count)
            }
            None => (0, 0),
        }
    }

    /// Per-origin delivery counts (diagnostics: spotting starved nodes).
    /// O(lanes), one entry per origin with at least one delivery.
    pub fn delivered_by_origin(&self) -> BTreeMap<NodeId, u64> {
        self.origin_counts(|lane| lane.delivered_count)
    }

    /// Per-origin generation counts. O(lanes).
    pub fn generated_by_origin(&self) -> BTreeMap<NodeId, u64> {
        self.origin_counts(|lane| lane.generated)
    }

    fn origin_counts(&self, count: impl Fn(&OriginLane) -> u64) -> BTreeMap<NodeId, u64> {
        let mut map = BTreeMap::new();
        for (i, lane) in self.lanes.iter().enumerate() {
            let n = count(lane);
            if n > 0 {
                map.insert(NodeId::from_index(self.first_track as usize + i), n);
            }
        }
        map
    }

    /// Current memory accounting, from vector capacities. Measure after
    /// `finish_measurement` (whose purge releases slack capacity) for
    /// the steady-state figure the city-10k gate checks.
    pub fn footprint(&self) -> TrackerFootprint {
        use std::mem::size_of;
        let mut bytes =
            size_of::<PacketTracker>() + self.lanes.capacity() * size_of::<OriginLane>();
        let mut live = 0u64;
        for lane in &self.lanes {
            bytes += lane.gen.capacity() * size_of::<SimTime>();
            bytes += lane.delivered.capacity() * size_of::<u64>();
            live += lane.gen.len() as u64;
        }
        TrackerFootprint {
            bytes,
            lanes: self.lanes.len(),
            tracked: self.generated_total,
            live,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Origin-keyed id, as the engine assigns them.
    fn id(origin: u16, seq: u64) -> PacketId {
        PacketId::new((u64::from(origin) << 48) | seq)
    }

    #[test]
    fn pdr_and_loss_accounting() {
        let mut t = PacketTracker::new();
        t.set_window(SimTime::ZERO, SimTime::from_secs(60));
        for i in 0..10 {
            t.record_generated(id(1, i), NodeId::new(1), SimTime::from_secs(i));
        }
        for i in 0..7 {
            t.record_delivered(id(1, i), SimTime::from_secs(i + 1), 2);
        }
        assert_eq!(t.generated(), 10);
        assert_eq!(t.delivered(), 7);
        assert_eq!(t.lost(), 3);
        assert!((t.pdr_percent() - 70.0).abs() < 1e-9);
        assert!((t.loss_per_minute() - 3.0).abs() < 1e-9);
        assert!((t.received_per_minute() - 7.0).abs() < 1e-9);
    }

    #[test]
    fn delay_is_averaged_over_delivered_only() {
        let mut t = PacketTracker::new();
        t.record_generated(id(1, 0), NodeId::new(1), SimTime::from_millis(0));
        t.record_generated(id(1, 1), NodeId::new(1), SimTime::from_millis(0));
        t.record_generated(id(1, 2), NodeId::new(1), SimTime::from_millis(0));
        t.record_delivered(id(1, 0), SimTime::from_millis(100), 1);
        t.record_delivered(id(1, 1), SimTime::from_millis(300), 3);
        // seq 2 lost.
        assert!((t.mean_delay_ms() - 200.0).abs() < 1e-9);
        assert!((t.mean_hops() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn delay_stats_min_max_and_percentiles() {
        let mut t = PacketTracker::new();
        for i in 0..100u64 {
            t.record_generated(id(2, i), NodeId::new(2), SimTime::ZERO);
            t.record_delivered(id(2, i), SimTime::from_millis(i + 1), 1);
        }
        let d = t.delay_stats();
        assert_eq!(d.count(), 100);
        assert_eq!(d.min_ms(), Some(1.0));
        assert_eq!(d.max_ms(), Some(100.0));
        // The histogram reports the upper edge of the matched bin:
        // within 25% above the true percentile.
        let p50 = d.percentile_ms(50.0);
        assert!((50.0..=63.0).contains(&p50), "p50 = {p50}");
        let p99 = d.percentile_ms(99.0);
        assert!((99.0..=124.0).contains(&p99), "p99 = {p99}");
        assert_eq!(d.bins().iter().sum::<u64>(), 100);
    }

    #[test]
    fn warmup_packets_excluded() {
        let mut t = PacketTracker::new();
        t.set_window(SimTime::from_secs(10), SimTime::from_secs(70));
        t.record_generated(id(1, 0), NodeId::new(1), SimTime::from_secs(5)); // warm-up
        t.record_generated(id(1, 1), NodeId::new(1), SimTime::from_secs(15));
        t.record_delivered(id(1, 0), SimTime::from_secs(16), 1); // stray
        t.record_delivered(id(1, 1), SimTime::from_secs(16), 1);
        assert_eq!(t.generated(), 1);
        assert_eq!(t.delivered(), 1);
        assert_eq!(t.stray_deliveries(), 1);
    }

    #[test]
    fn set_window_purges_previously_recorded_warmup() {
        // The engine records from t=0 and only then brackets the window:
        // pre-window packets (and their deliveries) must be dropped.
        let mut t = PacketTracker::new();
        t.record_generated(id(1, 0), NodeId::new(1), SimTime::from_secs(5));
        t.record_delivered(id(1, 0), SimTime::from_secs(6), 1);
        t.record_generated(id(1, 1), NodeId::new(1), SimTime::from_secs(20));
        t.record_delivered(id(1, 1), SimTime::from_secs(21), 1);
        t.set_window(SimTime::from_secs(10), SimTime::from_secs(70));
        assert_eq!(t.generated(), 1, "warm-up packet purged");
        assert_eq!(t.delivered(), 1, "warm-up delivery purged");
        // Re-tightening the window later (finish_measurement) keeps
        // in-window packets.
        t.set_window(SimTime::from_secs(10), SimTime::from_secs(30));
        assert_eq!(t.generated(), 1);
        // A delivery for the purged packet is a stray now.
        t.record_delivered(id(1, 0), SimTime::from_secs(25), 1);
        assert_eq!(t.stray_deliveries(), 1);
    }

    #[test]
    fn purge_drops_out_of_window_middle_and_keeps_margins_tight() {
        let mut t = PacketTracker::new();
        // Seqs 0..6 at 0, 10, 20, 30, 40, 50 s.
        for i in 0..6u64 {
            t.record_generated(id(4, i), NodeId::new(4), SimTime::from_secs(i * 10));
        }
        t.record_delivered(id(4, 2), SimTime::from_secs(21), 1);
        t.record_delivered(id(4, 5), SimTime::from_secs(51), 1);
        // Window [15 s, 45 s): keeps seqs 2 and 3 + 4, drops 0, 1, 5 —
        // the delivered seq 5 drop resets the streaming delay stats.
        t.set_window(SimTime::from_secs(15), SimTime::from_secs(45));
        assert_eq!(t.generated(), 3);
        assert_eq!(t.delivered(), 1);
        assert_eq!(t.delay_stats().count(), 0, "delivered drop resets stats");
        // The surviving delivered bit still guards duplicates.
        t.record_delivered(id(4, 2), SimTime::from_secs(30), 1);
        assert_eq!(t.duplicates(), 1);
        // Trimmed margins: deliveries for the trimmed seqs are strays.
        t.record_delivered(id(4, 0), SimTime::from_secs(30), 1);
        assert_eq!(t.stray_deliveries(), 1);
        assert_eq!(t.footprint().live, 3, "margins trimmed to seqs 2..=4");
    }

    #[test]
    fn duplicates_do_not_inflate_pdr() {
        let mut t = PacketTracker::new();
        t.record_generated(id(1, 0), NodeId::new(1), SimTime::ZERO);
        t.record_delivered(id(1, 0), SimTime::from_secs(1), 1);
        t.record_delivered(id(1, 0), SimTime::from_secs(2), 1);
        assert_eq!(t.delivered(), 1);
        assert_eq!(t.duplicates(), 1);
        assert!((t.pdr_percent() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn per_origin_breakdowns() {
        let mut t = PacketTracker::new();
        t.record_generated(id(1, 0), NodeId::new(1), SimTime::ZERO);
        t.record_generated(id(2, 0), NodeId::new(2), SimTime::ZERO);
        t.record_generated(id(2, 1), NodeId::new(2), SimTime::ZERO);
        t.record_delivered(id(2, 1), SimTime::from_secs(1), 1);
        assert_eq!(t.generated_by_origin()[&NodeId::new(2)], 2);
        assert_eq!(t.delivered_by_origin()[&NodeId::new(2)], 1);
        assert!(!t.delivered_by_origin().contains_key(&NodeId::new(1)));
        assert_eq!(t.origin_stats(NodeId::new(1)), (1, 0));
        assert_eq!(t.origin_stats(NodeId::new(2)), (2, 1));
        assert_eq!(t.origin_stats(NodeId::new(7)), (0, 0));
    }

    #[test]
    fn out_of_order_seqs_grow_lane_front() {
        // Generic (non-engine) use: seqs arrive out of order, so the
        // lane must grow downward and keep the delivered bits aligned.
        let mut t = PacketTracker::new();
        t.record_generated(id(3, 7), NodeId::new(3), SimTime::from_secs(1));
        t.record_delivered(id(3, 7), SimTime::from_secs(2), 1);
        t.record_generated(id(3, 2), NodeId::new(3), SimTime::from_secs(3));
        t.record_generated(id(3, 9), NodeId::new(3), SimTime::from_secs(4));
        assert_eq!(t.generated(), 3);
        assert_eq!(t.delivered(), 1);
        // Seq 7's delivered bit survived the front growth.
        t.record_delivered(id(3, 7), SimTime::from_secs(5), 1);
        assert_eq!(t.duplicates(), 1);
        t.record_delivered(id(3, 2), SimTime::from_secs(6), 1);
        assert_eq!(t.delivered(), 2);
        // Seq 5 was never generated: a hole, so its delivery is a stray.
        t.record_delivered(id(3, 5), SimTime::from_secs(7), 1);
        assert_eq!(t.stray_deliveries(), 1);
    }

    #[test]
    fn absorb_branch_unions_without_double_counting() {
        let n1 = NodeId::new(1);
        let n2 = NodeId::new(2);
        let n3 = NodeId::new(3);
        let mut t = PacketTracker::new();
        t.set_window(SimTime::ZERO, SimTime::from_secs(60));
        // Shared prefix: one packet, one duplicate, one stray.
        t.record_generated(id(1, 0), n1, SimTime::from_secs(1));
        t.record_delivered(id(1, 0), SimTime::from_secs(2), 1);
        t.record_delivered(id(1, 0), SimTime::from_secs(3), 1); // duplicate
        t.record_delivered(id(9, 0), SimTime::from_secs(3), 1); // stray
        let mark = t.mark();
        // Two branches clone the prefix and diverge on disjoint members.
        let mut a = t.clone();
        let mut b = t.clone();
        a.record_generated(id(2, 0), n2, SimTime::from_secs(4));
        a.record_delivered(id(2, 0), SimTime::from_secs(5), 2);
        a.record_delivered(id(2, 0), SimTime::from_secs(6), 2); // duplicate
        b.record_generated(id(3, 0), n3, SimTime::from_secs(4));
        b.record_delivered(id(7, 5), SimTime::from_secs(5), 1); // stray
        t.absorb_branch(&mut a, &mark, &[n1, n2]);
        t.absorb_branch(&mut b, &mark, &[n3]);
        assert_eq!(t.generated(), 3);
        assert_eq!(t.delivered(), 2);
        assert_eq!(t.duplicates(), 2, "prefix duplicate counted once");
        assert_eq!(t.stray_deliveries(), 2, "prefix stray counted once");
        assert_eq!(t.delay_stats().count(), 2, "prefix delay counted once");
    }

    #[test]
    fn absorb_branch_merges_interleaved_origin_lanes() {
        // Origins interleave across islands (odd/even), each with a
        // multi-packet lane and prefix history — the island-merge shape.
        let origins: Vec<NodeId> = (1..=4).map(NodeId::new).collect();
        let mut t = PacketTracker::new();
        t.set_window(SimTime::ZERO, SimTime::from_secs(600));
        // Shared prefix: every origin already has two packets, one
        // delivered.
        for &o in &origins {
            for s in 0..2u64 {
                t.record_generated(id(o.raw(), s), o, SimTime::from_secs(1 + s));
            }
            t.record_delivered(id(o.raw(), 0), SimTime::from_secs(4), 2);
        }
        let mark = t.mark();
        let mut a = t.clone(); // island {1, 3}
        let mut b = t.clone(); // island {2, 4}
        for (branch, parity) in [(&mut a, 1u16), (&mut b, 0u16)] {
            for &o in origins.iter().filter(|o| o.raw() % 2 == parity) {
                for s in 2..5u64 {
                    branch.record_generated(id(o.raw(), s), o, SimTime::from_secs(10 + s));
                }
                // Deliver the prefix leftover and one new packet.
                branch.record_delivered(id(o.raw(), 1), SimTime::from_secs(20), 3);
                branch.record_delivered(id(o.raw(), 3), SimTime::from_secs(21), 3);
            }
        }
        // Reference: the same events recorded sequentially.
        let mut reference = PacketTracker::new();
        reference.set_window(SimTime::ZERO, SimTime::from_secs(600));
        for &o in &origins {
            for s in 0..2u64 {
                reference.record_generated(id(o.raw(), s), o, SimTime::from_secs(1 + s));
            }
            reference.record_delivered(id(o.raw(), 0), SimTime::from_secs(4), 2);
        }
        for &o in &origins {
            for s in 2..5u64 {
                reference.record_generated(id(o.raw(), s), o, SimTime::from_secs(10 + s));
            }
            reference.record_delivered(id(o.raw(), 1), SimTime::from_secs(20), 3);
            reference.record_delivered(id(o.raw(), 3), SimTime::from_secs(21), 3);
        }
        let odd: Vec<NodeId> = origins
            .iter()
            .copied()
            .filter(|o| o.raw() % 2 == 1)
            .collect();
        let even: Vec<NodeId> = origins
            .iter()
            .copied()
            .filter(|o| o.raw() % 2 == 0)
            .collect();
        t.absorb_branch(&mut a, &mark, &odd);
        t.absorb_branch(&mut b, &mark, &even);
        assert_eq!(t, reference, "merged tracker == sequential tracker");
        assert_eq!(t.generated(), 20);
        assert_eq!(t.delivered(), 12);
        assert_eq!(t.generated_by_origin(), reference.generated_by_origin());
        assert_eq!(t.delivered_by_origin(), reference.delivered_by_origin());
    }

    #[test]
    fn clone_from_reuses_and_matches() {
        let mut src = PacketTracker::new();
        src.set_window(SimTime::ZERO, SimTime::from_secs(60));
        for s in 0..20u64 {
            src.record_generated(id(5, s), NodeId::new(5), SimTime::from_secs(s));
            if s % 2 == 0 {
                src.record_delivered(id(5, s), SimTime::from_secs(s + 1), 1);
            }
        }
        let mut dst = src.clone();
        // Diverge, then refresh: clone_from must restore equality.
        dst.record_generated(id(6, 0), NodeId::new(6), SimTime::from_secs(30));
        dst.clone_from(&src);
        assert_eq!(dst, src);
    }

    #[test]
    fn footprint_counts_lanes_and_bytes() {
        let mut t = PacketTracker::new();
        assert_eq!(t.footprint().tracked, 0);
        for s in 0..2_000u64 {
            t.record_generated(id(2, s), NodeId::new(2), SimTime::from_secs(s));
        }
        for s in 0..1_000u64 {
            t.record_delivered(id(2, s), SimTime::from_secs(s + 1), 1);
        }
        t.set_window(SimTime::ZERO, SimTime::from_secs(4_000));
        let fp = t.footprint();
        assert_eq!(fp.lanes, 1);
        assert_eq!(fp.tracked, 2_000);
        assert_eq!(fp.live, 2_000);
        // 8-byte times + 1 delivered bit per packet, plus fixed tracker +
        // lane headers (the inline histogram is ~2 KB): once those
        // amortize, well under the 12 bytes/packet the city gate demands.
        assert!(fp.bytes >= 2_000 * 8 + 2_000 / 8);
        assert!(fp.bytes_per_tracked() < 12.0, "{}", fp.bytes_per_tracked());
    }

    #[test]
    fn empty_tracker_defaults() {
        let t = PacketTracker::new();
        assert_eq!(t.pdr_percent(), 100.0);
        assert_eq!(t.mean_delay_ms(), 0.0);
        assert_eq!(t.mean_hops(), 0.0);
        assert_eq!(t.delay_stats().percentile_ms(99.0), 0.0);
        assert_eq!(t.delay_stats().min_ms(), None);
    }

    #[test]
    fn delay_bins_cover_the_range_monotonically() {
        // Every microsecond value lands in a bin whose upper edge is at
        // most 25% above it, and bin indices are monotone in the delay.
        let mut last = 0usize;
        for us in [0u64, 1, 7, 8, 63, 64, 1_000, 15_000, 3_000_000, 300_000_000] {
            let b = delay_bin(us);
            assert!(b >= last, "bin order at {us}");
            last = b;
            let upper = bin_upper_us(b);
            assert!(upper > us, "upper edge at {us}");
            assert!(
                upper as f64 <= (us.max(1) as f64) * 1.25 + 1.0,
                "edge slack at {us}"
            );
        }
        assert!(delay_bin(u64::MAX) < DELAY_BINS);
    }

    #[test]
    #[should_panic(expected = "needs a window")]
    fn rate_without_window_panics() {
        let t = PacketTracker::new();
        let _ = t.loss_per_minute();
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_window_rejected() {
        let mut t = PacketTracker::new();
        t.set_window(SimTime::from_secs(5), SimTime::from_secs(5));
    }
}
