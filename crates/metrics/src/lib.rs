//! # gtt-metrics — measurement plane for the GT-TSCH experiments
//!
//! Every figure in the paper's evaluation (§VIII) reports six series as a
//! function of the sweep variable:
//!
//! 1. packet delivery ratio (%),
//! 2. average end-to-end delay per packet (ms),
//! 3. average number of lost packets (packets/minute),
//! 4. average radio duty cycle per node (%),
//! 5. average queue loss per node (packets),
//! 6. received packets per minute (throughput).
//!
//! This crate provides the bookkeeping to produce them:
//! [`PacketTracker`] follows every application packet from generation to
//! root delivery (or loss), [`FigureRow`] is one measured point of all six
//! series, and [`stats`] holds the summary statistics used to average
//! rows across seeds.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod row;
pub mod stats;
pub mod tracker;

pub use row::FigureRow;
pub use stats::{jain_index, mean, std_dev, Summary};
pub use tracker::{DelayStats, PacketTracker, TrackerFootprint, TrackerMark, DELAY_BINS};
