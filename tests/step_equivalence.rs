//! Event-driven core vs `naive-step` oracle equivalence.
//!
//! The engine's slot-skipping refactor is only sound if it is
//! *observationally identical* to the exhaustive per-slot loop it
//! replaced: same seed in, byte-identical [`NetworkReport`] out — PDR,
//! delay, queue loss, duty cycle, per-node MAC counters, parents, ranks,
//! final clock. These tests pin that across every workload scenario
//! family, including the 120-node sparse-traffic grid the refactor was
//! built to unlock.
//!
//! Requires the `naive-step` feature (CI runs
//! `cargo test -p gtt-tests --features naive-step`): the oracle switch is
//! not exposed in default builds.

use gtt_engine::{EngineConfig, Network, NetworkReport};
use gtt_sim::SimDuration;
use gtt_workload::{NoiseBurst, RunSpec, Scenario, SchedulerKind};

/// Builds the scenario's network, optionally on the oracle loop.
fn build(scenario: &Scenario, scheduler: &SchedulerKind, spec: &RunSpec, naive: bool) -> Network {
    let config = EngineConfig {
        seed: spec.seed,
        ..scheduler.engine_config()
    };
    let sk = scheduler.clone();
    let mut builder = Network::builder(scenario.topology.clone(), config)
        .roots(scenario.roots.iter().copied())
        .traffic_ppm(spec.traffic_ppm)
        .scheduler_factory(move |id, is_root| sk.instantiate(id, is_root));
    if naive {
        builder = builder.naive_stepping();
    }
    builder.build()
}

/// Warm-up + measured window; returns the report and the final ASN.
fn measured(net: &mut Network, spec: &RunSpec) -> (NetworkReport, gtt_mac::Asn) {
    net.run_for(SimDuration::from_secs(spec.warmup_secs));
    net.start_measurement();
    net.run_for(SimDuration::from_secs(spec.measure_secs));
    net.finish_measurement();
    (net.report(), net.asn())
}

/// The property: both cores produce identical reports for the same seed.
fn assert_equivalent(scenario: &Scenario, scheduler: &SchedulerKind, spec: &RunSpec) {
    let (event_report, event_asn) = measured(&mut build(scenario, scheduler, spec, false), spec);
    let (naive_report, naive_asn) = measured(&mut build(scenario, scheduler, spec, true), spec);
    assert_eq!(
        event_report,
        naive_report,
        "{} / {} / seed {}: event-driven and oracle reports diverge",
        scenario.name,
        scheduler.name(),
        spec.seed
    );
    assert_eq!(
        event_asn,
        naive_asn,
        "{} / {}: final clocks diverge",
        scenario.name,
        scheduler.name()
    );
}

fn spec(seed: u64) -> RunSpec {
    RunSpec {
        traffic_ppm: 30.0,
        warmup_secs: 30,
        measure_secs: 60,
        seed,
    }
}

#[test]
fn star_minimal_equivalent_across_seeds() {
    let scenario = Scenario::star(6);
    for seed in [1, 2, 3, 5, 8, 13] {
        assert_equivalent(&scenario, &SchedulerKind::minimal(8), &spec(seed));
    }
}

#[test]
fn star_gt_tsch_equivalent_across_seeds() {
    let scenario = Scenario::star(6);
    for seed in [1, 4, 9] {
        assert_equivalent(&scenario, &SchedulerKind::gt_tsch_default(), &spec(seed));
    }
}

#[test]
fn two_dodag_gt_tsch_equivalent() {
    let scenario = Scenario::two_dodag(7);
    for seed in [1, 2] {
        assert_equivalent(&scenario, &SchedulerKind::gt_tsch_default(), &spec(seed));
    }
}

#[test]
fn two_dodag_orchestra_equivalent() {
    let scenario = Scenario::two_dodag(6);
    for seed in [1, 2] {
        assert_equivalent(&scenario, &SchedulerKind::orchestra_default(), &spec(seed));
    }
}

#[test]
fn large_grid_low_power_equivalent() {
    // The benches' acceptance case: the 120-node grid under the
    // steady-state low-power cadences (EngineConfig::low_power) and
    // 1 packet/min telemetry.
    let scenario = Scenario::large_grid();
    let scheduler = SchedulerKind::gt_tsch_default();
    let spec = RunSpec {
        traffic_ppm: 1.0,
        warmup_secs: 20,
        measure_secs: 25,
        seed: 7,
    };
    let mut reports = Vec::new();
    for naive in [false, true] {
        let config = EngineConfig {
            seed: spec.seed,
            ..EngineConfig::low_power()
        };
        let sk = scheduler.clone();
        let mut builder = Network::builder(scenario.topology.clone(), config)
            .roots(scenario.roots.iter().copied())
            .traffic_ppm(spec.traffic_ppm)
            .scheduler_factory(move |id, is_root| sk.instantiate(id, is_root));
        if naive {
            builder = builder.naive_stepping();
        }
        reports.push(measured(&mut builder.build(), &spec));
    }
    assert_eq!(reports[0], reports[1], "low-power runs diverge");
}

#[test]
fn large_grid_gt_tsch_equivalent() {
    // The 120-node sparse-traffic scenario the event core was built for.
    // Short window: the oracle leg is O(nodes × slots).
    let scenario = Scenario::large_grid();
    let spec = RunSpec {
        traffic_ppm: 6.0,
        warmup_secs: 20,
        measure_secs: 20,
        seed: 1,
    };
    assert_equivalent(&scenario, &SchedulerKind::gt_tsch_default(), &spec);
}

#[test]
fn large_star_minimal_equivalent() {
    let scenario = Scenario::large_star();
    let spec = RunSpec {
        traffic_ppm: 6.0,
        warmup_secs: 10,
        measure_secs: 15,
        seed: 3,
    };
    assert_equivalent(&scenario, &SchedulerKind::minimal(16), &spec);
}

#[test]
fn large_grid_orchestra_equivalent() {
    // The Rx-wake-bound case the multi-slotframe passive-listen index
    // targets: 120 Orchestra nodes whose three-frame schedules listen in
    // roughly one slot in five, almost always to silence.
    let scenario = Scenario::large_grid();
    let spec = RunSpec {
        traffic_ppm: 6.0,
        warmup_secs: 20,
        measure_secs: 20,
        seed: 2,
    };
    assert_equivalent(&scenario, &SchedulerKind::orchestra_default(), &spec);
}

#[test]
fn large_star_orchestra_equivalent() {
    // Dense single-hop counterpart: every transmission is audible to all
    // 120 nodes, so the listener probe and the cyclic-union index carry
    // the whole load.
    let scenario = Scenario::large_star();
    let spec = RunSpec {
        traffic_ppm: 6.0,
        warmup_secs: 10,
        measure_secs: 15,
        seed: 5,
    };
    assert_equivalent(&scenario, &SchedulerKind::orchestra_default(), &spec);
}

#[test]
fn interference_bursts_stay_equivalent() {
    // The 120-node interference scenario: NoiseBurst rewrites every
    // link PRR twice per window; both cores must absorb the repeated
    // mid-run mutations identically, at scale.
    let scenario = Scenario::interference_grid();
    let s = RunSpec {
        traffic_ppm: 6.0,
        warmup_secs: 10,
        measure_secs: 12,
        seed: 17,
    };
    let noise = NoiseBurst {
        quiet: SimDuration::from_secs(3),
        burst: SimDuration::from_secs(2),
        prr_factor: 0.1,
    };
    let scheduler = SchedulerKind::gt_tsch_default();
    let mut reports = Vec::new();
    for naive in [false, true] {
        let mut net = build(&scenario, &scheduler, &s, naive);
        net.run_for(SimDuration::from_secs(s.warmup_secs));
        net.start_measurement();
        noise.run(&mut net, SimDuration::from_secs(s.measure_secs));
        net.finish_measurement();
        reports.push((net.report(), net.asn()));
    }
    assert_eq!(reports[0], reports[1], "noise-burst runs diverge");
}

#[test]
fn mid_run_fault_injection_stays_equivalent() {
    // kill_node + PRR override exercise the lazy-accounting freeze path.
    let scenario = Scenario::star(6);
    let s = spec(11);
    let scheduler = SchedulerKind::minimal(8);
    let mut reports = Vec::new();
    for naive in [false, true] {
        let mut net = build(&scenario, &scheduler, &s, naive);
        net.run_for(SimDuration::from_secs(20));
        net.kill_node(gtt_net::NodeId::new(4));
        net.set_link_prr_symmetric(gtt_net::NodeId::new(0), gtt_net::NodeId::new(2), 0.5);
        reports.push(measured(&mut net, &s));
    }
    assert_eq!(reports[0], reports[1], "fault-injected runs diverge");
}
