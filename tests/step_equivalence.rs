//! Event-driven core vs `naive-step` oracle equivalence.
//!
//! The engine's slot-skipping refactor is only sound if it is
//! *observationally identical* to the exhaustive per-slot loop it
//! replaced: same seed in, byte-identical [`NetworkReport`] out — PDR,
//! delay, queue loss, duty cycle, per-node MAC counters, parents, ranks,
//! final clock. These tests pin that across every workload scenario
//! family — including every [`Overlay`] kind, whose timeline driver
//! performs the identical mutation sequence on both cores — and the
//! 120-node sparse-traffic grid the refactor was built to unlock.
//!
//! Requires the `naive-step` feature (CI runs
//! `cargo test -p gtt-tests --features naive-step`): the oracle switch is
//! not exposed in default builds. With `parallel` also on, a third leg
//! pins the island-parallel stepping path against both cores.

use gtt_engine::{Network, NetworkReport};
use gtt_net::{NodeId, Position};
use gtt_sim::SimDuration;
use gtt_workload::{
    DutyCycleBudget, Experiment, NoiseBurst, Overlay, RunSpec, ScenarioSpec, SchedulerKind,
    StepMobility,
};

/// Builds the experiment's network, optionally on the oracle loop.
fn build(experiment: &Experiment, naive: bool) -> Network {
    let mut builder = experiment.network_builder();
    if naive {
        builder = builder.naive_stepping();
    }
    builder.build()
}

/// The property: both cores produce identical reports (and clocks) for
/// the same experiment — warm-up, overlay timeline and measurement all
/// driven by the one [`Experiment::run_on`] driver.
fn assert_equivalent(experiment: &Experiment) {
    let mut reports: Vec<(NetworkReport, gtt_mac::Asn)> = Vec::new();
    for naive in [false, true] {
        let mut net = build(experiment, naive);
        let report = experiment.run_on(&mut net);
        reports.push((report, net.asn()));
    }
    assert_eq!(
        reports[0].0,
        reports[1].0,
        "{} / {} / seed {}: event-driven and oracle reports diverge",
        experiment.scenario.name(),
        experiment.scheduler.name(),
        experiment.run.seed
    );
    assert_eq!(
        reports[0].1,
        reports[1].1,
        "{} / {}: final clocks diverge",
        experiment.scenario.name(),
        experiment.scheduler.name()
    );
}

fn spec(seed: u64) -> RunSpec {
    RunSpec {
        traffic_ppm: 30.0,
        warmup_secs: 30,
        measure_secs: 60,
        seed,
        ..RunSpec::default()
    }
}

fn experiment(scenario: ScenarioSpec, scheduler: SchedulerKind, seed: u64) -> Experiment {
    Experiment::new(scenario, scheduler).with_run(spec(seed))
}

#[test]
fn star_minimal_equivalent_across_seeds() {
    for seed in [1, 2, 3, 5, 8, 13] {
        assert_equivalent(&experiment(
            ScenarioSpec::star(6),
            SchedulerKind::minimal(8),
            seed,
        ));
    }
}

#[test]
fn star_gt_tsch_equivalent_across_seeds() {
    for seed in [1, 4, 9] {
        assert_equivalent(&experiment(
            ScenarioSpec::star(6),
            SchedulerKind::gt_tsch_default(),
            seed,
        ));
    }
}

#[test]
fn two_dodag_gt_tsch_equivalent() {
    for seed in [1, 2] {
        assert_equivalent(&experiment(
            ScenarioSpec::two_dodag(7),
            SchedulerKind::gt_tsch_default(),
            seed,
        ));
    }
}

#[test]
fn two_dodag_orchestra_equivalent() {
    for seed in [1, 2] {
        assert_equivalent(&experiment(
            ScenarioSpec::two_dodag(6),
            SchedulerKind::orchestra_default(),
            seed,
        ));
    }
}

#[test]
fn large_grid_low_power_equivalent() {
    // The benches' acceptance case: the 120-node grid under the
    // steady-state low-power cadences (RunSpec::low_power) and
    // 1 packet/min telemetry.
    let exp = Experiment::new(ScenarioSpec::large_grid(), SchedulerKind::gt_tsch_default())
        .with_run(RunSpec {
            traffic_ppm: 1.0,
            warmup_secs: 20,
            measure_secs: 25,
            seed: 7,
            low_power: true,
        });
    assert_equivalent(&exp);
}

#[test]
fn large_grid_gt_tsch_equivalent() {
    // The 120-node sparse-traffic scenario the event core was built for.
    // Short window: the oracle leg is O(nodes × slots).
    let exp = Experiment::new(ScenarioSpec::large_grid(), SchedulerKind::gt_tsch_default())
        .with_run(RunSpec {
            traffic_ppm: 6.0,
            warmup_secs: 20,
            measure_secs: 20,
            seed: 1,
            ..RunSpec::default()
        });
    assert_equivalent(&exp);
}

#[test]
fn large_star_minimal_equivalent() {
    let exp =
        Experiment::new(ScenarioSpec::large_star(), SchedulerKind::minimal(16)).with_run(RunSpec {
            traffic_ppm: 6.0,
            warmup_secs: 10,
            measure_secs: 15,
            seed: 3,
            ..RunSpec::default()
        });
    assert_equivalent(&exp);
}

#[test]
fn large_grid_orchestra_equivalent() {
    // The Rx-wake-bound case the multi-slotframe passive-listen index
    // targets: 120 Orchestra nodes whose three-frame schedules listen in
    // roughly one slot in five, almost always to silence.
    let exp = Experiment::new(
        ScenarioSpec::large_grid(),
        SchedulerKind::orchestra_default(),
    )
    .with_run(RunSpec {
        traffic_ppm: 6.0,
        warmup_secs: 20,
        measure_secs: 20,
        seed: 2,
        ..RunSpec::default()
    });
    assert_equivalent(&exp);
}

#[test]
fn large_star_orchestra_equivalent() {
    // Dense single-hop counterpart: every transmission is audible to all
    // 120 nodes, so the listener probe and the cyclic-union index carry
    // the whole load.
    let exp = Experiment::new(
        ScenarioSpec::large_star(),
        SchedulerKind::orchestra_default(),
    )
    .with_run(RunSpec {
        traffic_ppm: 6.0,
        warmup_secs: 10,
        measure_secs: 15,
        seed: 5,
        ..RunSpec::default()
    });
    assert_equivalent(&exp);
}

#[test]
fn interference_bursts_stay_equivalent() {
    // The 120-node interference scenario: the noise overlay rewrites
    // every link PRR twice per window; both cores must absorb the
    // repeated mid-run mutations identically, at scale.
    let exp = Experiment::new(
        ScenarioSpec::interference_grid(),
        SchedulerKind::gt_tsch_default(),
    )
    .with_run(RunSpec {
        traffic_ppm: 6.0,
        warmup_secs: 10,
        measure_secs: 12,
        seed: 17,
        ..RunSpec::default()
    })
    .with_overlay(Overlay::Noise(NoiseBurst {
        quiet: SimDuration::from_secs(3),
        burst: SimDuration::from_secs(2),
        prr_factor: 0.1,
    }));
    assert_equivalent(&exp);
}

#[test]
fn mobility_overlay_stays_equivalent() {
    // Step mobility on the Fig. 8 network: one leaf walks out of its
    // DODAG entirely, then into the *other* DODAG's radio space, then
    // home — audibility adjacency and every touched PRR are rewritten
    // three times mid-measurement, and the relocated node must be
    // picked up by probe-woken listens identically on both cores.
    let exp = experiment(
        ScenarioSpec::two_dodag(6),
        SchedulerKind::gt_tsch_default(),
        21,
    )
    .with_overlay(Overlay::Mobility(
        StepMobility::new()
            .hop(
                SimDuration::from_secs(10),
                NodeId::new(5),
                Position::new(500.0, 200.0),
            )
            .hop(
                SimDuration::from_secs(25),
                NodeId::new(5),
                Position::new(1_000.0 - 25.0, 10.0),
            )
            .hop(
                SimDuration::from_secs(45),
                NodeId::new(5),
                Position::new(25.0, 10.0),
            ),
    ));
    assert_equivalent(&exp);
}

#[test]
fn mobility_overlay_at_scale_stays_equivalent() {
    // The 120-node grid with a corner node leaping across it: a large
    // audibility rebuild while 119 passive listeners keep their
    // schedules — the case where a stale audibility cache would
    // instantly desynchronize the cores.
    let exp = Experiment::new(
        ScenarioSpec::large_grid(),
        SchedulerKind::orchestra_default(),
    )
    .with_run(RunSpec {
        traffic_ppm: 6.0,
        warmup_secs: 10,
        measure_secs: 15,
        seed: 23,
        ..RunSpec::default()
    })
    .with_overlay(Overlay::Mobility(
        StepMobility::new()
            .hop(
                SimDuration::from_secs(5),
                NodeId::new(119),
                Position::new(0.0, 15.0),
            )
            .hop(
                SimDuration::from_secs(10),
                NodeId::new(119),
                Position::new(330.0, 270.0),
            ),
    ));
    assert_equivalent(&exp);
}

#[test]
fn duty_cycle_overlay_stays_equivalent() {
    // A tight radio-on budget that actually bites (minimal schedules
    // idle-listen constantly): throttle decisions are made from lazily
    // settled counters every 2 s, so any accounting drift between the
    // cores becomes a diverging throttle set and a diverging report.
    let exp = experiment(ScenarioSpec::star(6), SchedulerKind::minimal(8), 29).with_overlay(
        Overlay::DutyCycle(DutyCycleBudget {
            window: SimDuration::from_secs(20),
            check: SimDuration::from_secs(2),
            max_duty_percent: 2.0,
        }),
    );
    assert_equivalent(&exp);
}

#[test]
fn composed_overlays_stay_equivalent() {
    // All three overlay kinds on one run: noise bursts over a walking
    // node under a duty budget. Exercises same-instant event ordering
    // (declaration order) and noise's re-read of the audible-link set
    // after a move.
    let exp = experiment(ScenarioSpec::star(6), SchedulerKind::minimal(8), 31)
        .with_overlay(Overlay::Noise(NoiseBurst {
            quiet: SimDuration::from_secs(4),
            burst: SimDuration::from_secs(2),
            prr_factor: 0.3,
        }))
        .with_overlay(Overlay::Mobility(
            StepMobility::new()
                .hop(
                    SimDuration::from_secs(12),
                    NodeId::new(2),
                    Position::new(300.0, 0.0),
                )
                .hop(
                    SimDuration::from_secs(36),
                    NodeId::new(2),
                    Position::new(0.0, 25.0),
                ),
        ))
        .with_overlay(Overlay::DutyCycle(DutyCycleBudget {
            window: SimDuration::from_secs(15),
            check: SimDuration::from_secs(3),
            max_duty_percent: 5.0,
        }));
    assert_equivalent(&exp);
}

/// Island-parallel leg (the `parallel` feature, CI's parallel smoke
/// job): the scoped-thread island path must be byte-identical to *both*
/// the sequential event core and the naive-step oracle. Three-way
/// comparison so a shared bug in the two fast cores can't hide.
#[cfg(feature = "parallel")]
fn assert_parallel_equivalent(experiment: &Experiment) {
    let mut reports: Vec<(NetworkReport, gtt_mac::Asn)> = Vec::new();
    // naive oracle, sequential event core, island-parallel event core.
    for (naive, parallel) in [(true, false), (false, false), (false, true)] {
        let mut builder = experiment.network_builder();
        if naive {
            builder = builder.naive_stepping();
        }
        if parallel {
            builder = builder.parallel_stepping();
        }
        let mut net = builder.build();
        let report = experiment.run_on(&mut net);
        reports.push((report, net.asn()));
    }
    assert_eq!(
        reports[1],
        reports[2],
        "{} / {} / seed {}: parallel and sequential runs diverge",
        experiment.scenario.name(),
        experiment.scheduler.name(),
        experiment.run.seed
    );
    assert_eq!(
        reports[0],
        reports[1],
        "{} / {} / seed {}: event-driven core and oracle diverge",
        experiment.scenario.name(),
        experiment.scheduler.name(),
        experiment.run.seed
    );
}

#[test]
#[cfg(feature = "parallel")]
fn parallel_two_dodag_equivalent() {
    // Two radio-disjoint DODAGs: the genuine two-island case where the
    // parallel path actually splits, steps on two threads, and merges.
    assert_parallel_equivalent(&experiment(
        ScenarioSpec::two_dodag(7),
        SchedulerKind::gt_tsch_default(),
        1,
    ));
}

#[test]
#[cfg(feature = "parallel")]
fn parallel_large_grid_equivalent() {
    // The 120-node grid is one connected island: the parallel switch
    // must fall back to the sequential core without perturbing anything.
    let exp = Experiment::new(ScenarioSpec::large_grid(), SchedulerKind::gt_tsch_default())
        .with_run(RunSpec {
            traffic_ppm: 6.0,
            warmup_secs: 20,
            measure_secs: 20,
            seed: 1,
            ..RunSpec::default()
        });
    assert_parallel_equivalent(&exp);
}

#[test]
#[cfg(feature = "parallel")]
fn parallel_island_split_and_merge_equivalent() {
    // The mobility case from `mobility_overlay_stays_equivalent`: node 5
    // walks out of its DODAG (briefly its own third island), into the
    // other DODAG's radio space (merging two islands into one), then
    // home. Every hop changes the island partition mid-run, so the
    // parallel path re-partitions across split *and* merge and must
    // still match both sequential cores byte-for-byte.
    let exp = experiment(
        ScenarioSpec::two_dodag(6),
        SchedulerKind::gt_tsch_default(),
        21,
    )
    .with_overlay(Overlay::Mobility(
        StepMobility::new()
            .hop(
                SimDuration::from_secs(10),
                NodeId::new(5),
                Position::new(500.0, 200.0),
            )
            .hop(
                SimDuration::from_secs(25),
                NodeId::new(5),
                Position::new(1_000.0 - 25.0, 10.0),
            )
            .hop(
                SimDuration::from_secs(45),
                NodeId::new(5),
                Position::new(25.0, 10.0),
            ),
    ));
    assert_parallel_equivalent(&exp);
}

#[test]
fn city_reduced_equivalent() {
    // A reduced city (3 clustered DODAGs × 12 nodes): the multi-island
    // phyllotaxis layout the spatial index was built for, shrunk so the
    // O(nodes × slots) oracle leg stays affordable. Pins the grid-backed
    // adjacency against the exhaustive loop end to end.
    let exp = Experiment::new(ScenarioSpec::city(3, 12), SchedulerKind::gt_tsch_default())
        .with_run(RunSpec {
            traffic_ppm: 6.0,
            warmup_secs: 20,
            measure_secs: 20,
            seed: 3,
            ..RunSpec::default()
        });
    assert_equivalent(&exp);
}

#[test]
#[cfg(feature = "parallel")]
fn parallel_city_equivalent() {
    // Three genuine radio islands stepped on scoped threads (with the
    // retained island-shell pool active across `run_until` windows) must
    // match both sequential cores byte-for-byte.
    let exp = Experiment::new(ScenarioSpec::city(3, 12), SchedulerKind::gt_tsch_default())
        .with_run(RunSpec {
            traffic_ppm: 6.0,
            warmup_secs: 20,
            measure_secs: 20,
            seed: 3,
            ..RunSpec::default()
        });
    assert_parallel_equivalent(&exp);
}

#[test]
#[cfg(feature = "parallel")]
fn parallel_city_mobility_island_churn_equivalent() {
    // Pool-keying stress: a leaf of cluster 0 walks to open ground (its
    // own fourth island), into cluster 1's radio space (3 islands with
    // changed membership), then home (back to the original partition).
    // Every hop re-keys the island set, so pooled shells are checked
    // out, missed, and rebuilt across the churn — and the final reports
    // must still match both sequential cores byte-for-byte. Cluster
    // origins for `city(3, _)` sit at (0,0), (1000,0) and (0,1000).
    let exp = Experiment::new(ScenarioSpec::city(3, 12), SchedulerKind::gt_tsch_default())
        .with_run(RunSpec {
            traffic_ppm: 6.0,
            warmup_secs: 15,
            measure_secs: 30,
            seed: 27,
            ..RunSpec::default()
        })
        .with_overlay(Overlay::Mobility(
            StepMobility::new()
                .hop(
                    SimDuration::from_secs(10),
                    NodeId::new(11),
                    Position::new(500.0, 500.0),
                )
                .hop(
                    SimDuration::from_secs(25),
                    NodeId::new(11),
                    Position::new(1_010.0, 10.0),
                )
                .hop(
                    SimDuration::from_secs(40),
                    NodeId::new(11),
                    Position::new(20.0, 5.0),
                ),
        ));
    assert_parallel_equivalent(&exp);
}

#[test]
fn mid_run_fault_injection_stays_equivalent() {
    // kill_node + PRR override exercise the lazy-accounting freeze path.
    let exp = experiment(ScenarioSpec::star(6), SchedulerKind::minimal(8), 11);
    let mut reports = Vec::new();
    for naive in [false, true] {
        let mut net = build(&exp, naive);
        net.run_for(SimDuration::from_secs(20));
        net.kill_node(NodeId::new(4));
        net.set_link_prr_symmetric(NodeId::new(0), NodeId::new(2), 0.5);
        reports.push((exp.run_on(&mut net), net.asn()));
    }
    assert_eq!(reports[0], reports[1], "fault-injected runs diverge");
}
