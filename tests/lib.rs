//! Support crate for the cross-crate integration tests; see the
//! `[[test]]` targets in `Cargo.toml`.
