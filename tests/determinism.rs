//! Reproducibility guarantees: a seed fully determines a run, across
//! schedulers and independent of wall-clock concerns.

use gtt_metrics::FigureRow;
use gtt_workload::{Experiment, RunSpec, ScenarioSpec, SchedulerKind};

fn one_run(scheduler: &SchedulerKind, seed: u64) -> (FigureRow, u64, u64) {
    let r = Experiment::new(ScenarioSpec::two_dodag(6), scheduler.clone())
        .with_run(RunSpec {
            traffic_ppm: 75.0,
            warmup_secs: 60,
            measure_secs: 90,
            seed,
            ..RunSpec::default()
        })
        .run();
    (r.row, r.generated, r.delivered)
}

#[test]
fn gt_tsch_runs_replay_bit_identically() {
    assert_eq!(
        one_run(&SchedulerKind::gt_tsch_default(), 42),
        one_run(&SchedulerKind::gt_tsch_default(), 42)
    );
}

#[test]
fn orchestra_runs_replay_bit_identically() {
    assert_eq!(
        one_run(&SchedulerKind::orchestra_default(), 42),
        one_run(&SchedulerKind::orchestra_default(), 42)
    );
}

#[test]
fn different_seeds_explore_different_executions() {
    let a = one_run(&SchedulerKind::gt_tsch_default(), 1);
    let b = one_run(&SchedulerKind::gt_tsch_default(), 2);
    assert_ne!(a, b, "distinct seeds must not coincide");
}

#[test]
fn seeds_change_noise_not_conclusions() {
    // Across seeds, GT-TSCH's PDR at 75 ppm stays in a tight high band —
    // the figure averages are meaningful.
    let pdrs: Vec<f64> = (1..=4)
        .map(|s| one_run(&SchedulerKind::gt_tsch_default(), s).0.pdr_percent)
        .collect();
    for pdr in &pdrs {
        assert!(*pdr > 95.0, "seed variance too large: {pdrs:?}");
    }
}
