//! Whole-network invariants of the GT-TSCH scheduler, checked on live
//! simulations: the §III channel-allocation properties, the §IV
//! slotframe structure and the §V data-cell rules.

use gt_tsch::GtTschSf;
use gtt_engine::Network;
use gtt_mac::CellClass;
use gtt_net::{Dest, NodeId};
use gtt_sim::SimDuration;
use gtt_workload::{Experiment, RunSpec, ScenarioSpec, SchedulerKind};

fn converged_network(seed: u64) -> Network {
    let spec = RunSpec {
        traffic_ppm: 75.0,
        warmup_secs: 150,
        measure_secs: 60,
        seed,
        ..RunSpec::default()
    };
    let mut net = Experiment::new(ScenarioSpec::two_dodag(7), SchedulerKind::gt_tsch_default())
        .with_run(spec)
        .build_network();
    net.run_for(SimDuration::from_secs(spec.warmup_secs));
    assert_eq!(net.join_ratio(), 1.0, "network must converge in warm-up");
    net
}

fn sf_of(net: &Network, id: u16) -> &GtTschSf {
    net.node(NodeId::new(id))
        .scheduler
        .as_any()
        .downcast_ref::<GtTschSf>()
        .expect("gt-tsch scheduler")
}

#[test]
fn child_transmits_on_parents_children_channel() {
    let net = converged_network(3);
    for node in net.nodes() {
        let Some(parent) = node.rpl.parent() else {
            continue;
        };
        let sf = sf_of(&net, node.id().raw());
        let parent_sf = sf_of(&net, parent.raw());
        if let (Some(f_up), Some(f_parent_children)) =
            (sf.parent_channel(), parent_sf.children_channel())
        {
            assert_eq!(
                f_up,
                f_parent_children,
                "{}'s channel to {} must be the parent's children channel",
                node.id(),
                parent
            );
        }
    }
}

#[test]
fn parent_and_children_channels_differ_locally() {
    // §III: a node's parent-facing and children-facing channels differ,
    // and neither is the broadcast channel.
    let net = converged_network(5);
    for node in net.nodes() {
        let sf = sf_of(&net, node.id().raw());
        if let (Some(up), Some(down)) = (sf.parent_channel(), sf.children_channel()) {
            assert_ne!(up, down, "{}: f_par == f_cs", node.id());
        }
        for ch in [sf.parent_channel(), sf.children_channel()]
            .into_iter()
            .flatten()
        {
            assert_ne!(ch, 0, "{}: f_bcast reused", node.id());
        }
    }
}

#[test]
fn three_hop_channel_uniqueness() {
    // §III strategy 3: along any child → parent → grandparent path, the
    // three children-facing channels are pairwise distinct.
    let net = converged_network(7);
    let mut checked = 0;
    for node in net.nodes() {
        let Some(parent) = node.rpl.parent() else {
            continue;
        };
        let Some(grand) = net.node(parent).rpl.parent() else {
            continue;
        };
        let c0 = sf_of(&net, node.id().raw()).children_channel();
        let c1 = sf_of(&net, parent.raw()).children_channel();
        let c2 = sf_of(&net, grand.raw()).children_channel();
        if let (Some(c0), Some(c1), Some(c2)) = (c0, c1, c2) {
            assert_ne!(c0, c1, "{} vs parent {}", node.id(), parent);
            assert_ne!(c1, c2, "parent {} vs grandparent {}", parent, grand);
            assert_ne!(
                c0,
                c2,
                "{} vs grandparent {} (hidden terminal)",
                node.id(),
                grand
            );
            checked += 1;
        }
    }
    assert!(checked >= 4, "expected several 3-hop paths, got {checked}");
}

#[test]
fn siblings_receive_on_distinct_channels() {
    // Algorithm 1's inner loop: two children of the same parent get
    // different channels for their own subtrees (§III problem 2).
    let net = converged_network(9);
    for parent in net.nodes() {
        let children: Vec<NodeId> = parent.rpl.children();
        let channels: Vec<u8> = children
            .iter()
            .filter_map(|c| sf_of(&net, c.raw()).children_channel())
            .collect();
        let mut dedup = channels.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(
            dedup.len(),
            channels.len(),
            "children of {} share a subtree channel: {channels:?}",
            parent.id()
        );
    }
}

#[test]
fn forwarders_keep_tx_above_rx() {
    // §V rule 1: on every non-root node with granted Rx cells, the number
    // of data Tx cells strictly exceeds the data Rx cells.
    let net = converged_network(11);
    for node in net.nodes() {
        if node.rpl.is_root() {
            continue;
        }
        let frame = node
            .mac
            .schedule()
            .frame(gtt_mac::SlotframeHandle::new(0))
            .expect("single slotframe");
        let tx = frame
            .cells()
            .iter()
            .filter(|c| c.class == CellClass::Data && c.options.tx)
            .count();
        let rx = frame
            .cells()
            .iter()
            .filter(|c| c.class == CellClass::Data && c.options.rx && !c.options.tx)
            .count();
        if rx > 0 {
            assert!(
                tx > rx,
                "{}: tx={tx} must exceed rx={rx} (§V rule 1)",
                node.id()
            );
        }
    }
}

#[test]
fn rx_cells_are_interleaved_with_tx_cells() {
    // §V rule 2 (Fig. 5): cyclically, every data-Rx cell is followed by a
    // data-Tx cell before the next data-Rx cell — on every forwarder.
    let net = converged_network(13);
    for node in net.nodes() {
        if node.rpl.is_root() {
            continue;
        }
        let frame = node
            .mac
            .schedule()
            .frame(gtt_mac::SlotframeHandle::new(0))
            .expect("single slotframe");
        let mut data: Vec<(u16, bool)> = frame
            .cells()
            .iter()
            .filter(|c| c.class == CellClass::Data)
            .map(|c| (c.slot.raw(), c.options.tx))
            .collect();
        data.sort_unstable();
        let n = data.len();
        if n < 2 || !data.iter().any(|&(_, tx)| tx) {
            continue;
        }
        for i in 0..n {
            if !data[i].1 {
                assert!(
                    data[(i + 1) % n].1,
                    "{}: consecutive Rx cells at {:?}",
                    node.id(),
                    data
                );
            }
        }
    }
}

#[test]
fn no_duplicate_cells_in_any_slot() {
    // A node never schedules two cells in one slot of its slotframe
    // (one radio, one action).
    let net = converged_network(17);
    for node in net.nodes() {
        let frame = node
            .mac
            .schedule()
            .frame(gtt_mac::SlotframeHandle::new(0))
            .expect("single slotframe");
        let mut slots: Vec<u16> = frame.cells().iter().map(|c| c.slot.raw()).collect();
        let before = slots.len();
        slots.sort_unstable();
        slots.dedup();
        assert_eq!(slots.len(), before, "{} double-books a slot", node.id());
    }
}

#[test]
fn granted_cells_are_mirrored_at_the_parent() {
    // Every data Tx cell a child holds towards its parent has a matching
    // Rx cell (same slot, same channel) at the parent.
    let net = converged_network(19);
    let mut mirrored = 0;
    for node in net.nodes() {
        let Some(parent) = node.rpl.parent() else {
            continue;
        };
        let child_frame = node
            .mac
            .schedule()
            .frame(gtt_mac::SlotframeHandle::new(0))
            .expect("slotframe");
        let parent_frame = net
            .node(parent)
            .mac
            .schedule()
            .frame(gtt_mac::SlotframeHandle::new(0))
            .expect("slotframe");
        for cell in child_frame.cells() {
            if cell.class != CellClass::Data || !cell.options.tx {
                continue;
            }
            let matching = parent_frame.cells_at(cell.slot).any(|p| {
                p.class == CellClass::Data
                    && p.options.rx
                    && p.channel_offset == cell.channel_offset
                    && p.peer == Dest::Unicast(node.id())
            });
            assert!(
                matching,
                "{}'s Tx cell {} has no mirror at parent {}",
                node.id(),
                cell,
                parent
            );
            mirrored += 1;
        }
    }
    assert!(
        mirrored >= 10,
        "expected many mirrored cells, got {mirrored}"
    );
}

#[test]
fn broadcast_cells_follow_the_uniform_layout() {
    // §IV rule 1 on every node: k broadcast cells at offsets
    // x % ⌊m/k⌋ == 0 on the broadcast channel.
    let net = converged_network(23);
    for node in net.nodes() {
        let frame = node
            .mac
            .schedule()
            .frame(gtt_mac::SlotframeHandle::new(0))
            .expect("slotframe");
        let slots: Vec<u16> = frame
            .cells()
            .iter()
            .filter(|c| c.class == CellClass::Broadcast)
            .map(|c| c.slot.raw())
            .collect();
        assert_eq!(slots, vec![0, 8, 16, 24], "{}", node.id());
    }
}
