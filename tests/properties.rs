//! Property-based tests (proptest) over the core data structures and
//! algorithms: the game's optimality claim, the 6P codec, the channel
//! allocator, queues, slotframes and the packet tracker.

use proptest::prelude::*;

use gt_tsch::game::{GameInputs, GameWeights};
use gt_tsch::ChannelAllocator;
use gtt_mac::{Asn, ChannelOffset, HoppingSequence};
use gtt_metrics::PacketTracker;
use gtt_net::{
    Dest, DrawStreams, Frame, LinkModel, Listener, NodeId, PacketId, PacketQueue, PhysicalChannel,
    Position, RadioMedium, RxOutcome, SlotOutcomes, Topology, TopologyBuilder, Transmission,
};
use gtt_sim::{EventQueue, Pcg32, SimTime};
use gtt_sixtop::{CellSpec, ReturnCode, SixpBody, SixpCellKind, SixpMessage};

// ---------------------------------------------------------------- game

fn arb_weights() -> impl Strategy<Value = GameWeights> {
    (0.1f64..4.0, 0.0f64..3.0, 0.0f64..3.0).prop_map(|(alpha, beta, gamma)| GameWeights {
        alpha,
        beta,
        gamma,
    })
}

fn arb_inputs() -> impl Strategy<Value = GameInputs> {
    (
        0.05f64..1.0, // rank weight (hop 1..20)
        1.0f64..6.0,  // ETX
        0.0f64..8.0,  // queue average
        1u16..6,      // l_tx_min
        1u16..16,     // l_rx_parent
    )
        .prop_map(
            |(rank_weight, etx, queue_avg, l_tx_min, l_rx_parent)| GameInputs {
                rank_weight,
                etx,
                queue_avg,
                queue_max: 8.0,
                l_tx_min,
                l_rx_parent,
            },
        )
}

proptest! {
    /// eq. 15's closed form really is the argmax over the whole feasible
    /// integer strategy set, for arbitrary weights and inputs.
    #[test]
    fn best_response_dominates_all_feasible_strategies(
        inputs in arb_inputs(),
        weights in arb_weights(),
    ) {
        let br = inputs.best_response(&weights);
        if inputs.l_rx_parent <= inputs.l_tx_min {
            prop_assert_eq!(br.cells, inputs.l_rx_parent);
        } else {
            prop_assert!(br.cells >= inputs.l_tx_min);
            prop_assert!(br.cells <= inputs.l_rx_parent);
            let v_star = inputs.payoff(&weights, br.cells as f64);
            for l in inputs.l_tx_min..=inputs.l_rx_parent {
                prop_assert!(
                    inputs.payoff(&weights, l as f64) <= v_star + 1e-9,
                    "l={} beats l*={}", l, br.cells
                );
            }
        }
    }

    /// Theorem 1, fuzzed: the payoff is strictly concave everywhere on
    /// the strategy space.
    #[test]
    fn payoff_curvature_is_negative(
        inputs in arb_inputs(),
        weights in arb_weights(),
        l in 0u16..32,
    ) {
        prop_assert!(inputs.payoff_curvature(&weights, l as f64) < 0.0);
    }
}

// ------------------------------------------------------------- sixtop

fn arb_cells() -> impl Strategy<Value = Vec<CellSpec>> {
    prop::collection::vec((0u16..128, 0u8..16), 0..8)
        .prop_map(|v| v.into_iter().map(|(s, c)| CellSpec::new(s, c)).collect())
}

fn arb_kind() -> impl Strategy<Value = SixpCellKind> {
    prop_oneof![Just(SixpCellKind::Data), Just(SixpCellKind::SixP)]
}

fn arb_code() -> impl Strategy<Value = ReturnCode> {
    prop_oneof![
        Just(ReturnCode::Success),
        Just(ReturnCode::Err),
        Just(ReturnCode::ErrSeqnum),
        Just(ReturnCode::ErrBusy),
        Just(ReturnCode::ErrNoCells),
    ]
}

fn arb_body() -> impl Strategy<Value = SixpBody> {
    prop_oneof![
        (arb_kind(), 0u16..32, arb_cells()).prop_map(|(kind, num_cells, cells)| {
            SixpBody::AddRequest {
                kind,
                num_cells,
                cells,
            }
        }),
        (arb_code(), arb_cells()).prop_map(|(code, cells)| SixpBody::AddResponse { code, cells }),
        (arb_kind(), arb_cells()).prop_map(|(kind, cells)| SixpBody::DeleteRequest { kind, cells }),
        (arb_code(), arb_cells())
            .prop_map(|(code, cells)| SixpBody::DeleteResponse { code, cells }),
        Just(SixpBody::ClearRequest),
        arb_code().prop_map(|code| SixpBody::ClearResponse { code }),
        Just(SixpBody::AskChannelRequest),
        (arb_code(), 0u8..16).prop_map(|(code, channel_offset)| {
            SixpBody::AskChannelResponse {
                code,
                channel_offset,
            }
        }),
    ]
}

proptest! {
    /// Any well-formed 6P message survives encode → decode unchanged.
    #[test]
    fn sixp_codec_round_trips(seqnum in any::<u8>(), body in arb_body()) {
        let msg = SixpMessage::new(seqnum, body);
        let decoded = SixpMessage::decode(&msg.encode()).expect("decode");
        prop_assert_eq!(decoded, msg);
    }

    /// Arbitrary byte soup never panics the decoder — it errors.
    #[test]
    fn sixp_decoder_total_on_garbage(bytes in prop::collection::vec(any::<u8>(), 0..64)) {
        let _ = SixpMessage::decode(&bytes);
    }
}

// ------------------------------------------------------------ channels

proptest! {
    /// Whatever the allocate/release interleaving, the allocator never
    /// hands out a reserved channel and keeps live siblings distinct
    /// while distinct offsets remain.
    #[test]
    fn channel_allocator_invariants(
        ops in prop::collection::vec((0u16..6, any::<bool>()), 1..40),
        f_parent in 1u8..8,
        f_children in 1u8..8,
    ) {
        prop_assume!(f_parent != f_children);
        let mut alloc = ChannelAllocator::new(8, 0);
        // Distinctness is guaranteed only while the fan-out has *never*
        // exceeded max_children (the paper bounds it; beyond that the
        // allocator reuses channels gracefully and on purpose).
        let mut ever_overflowed = false;
        for (child, is_alloc) in ops {
            let child = NodeId::new(child);
            if is_alloc {
                let ch = alloc.allocate(child, Some(f_parent), Some(f_children))
                    .expect("8 offsets with 3 reserved can always serve");
                prop_assert_ne!(ch, 0);
                prop_assert_ne!(ch, f_parent);
                prop_assert_ne!(ch, f_children);
            } else {
                alloc.release(child);
            }
            ever_overflowed |= alloc.allocated() > alloc.max_children() as usize;
            if !ever_overflowed {
                let mut live: Vec<u8> = (0..6u16)
                    .filter_map(|c| alloc.channel_of(NodeId::new(c)))
                    .collect();
                let n = live.len();
                live.sort_unstable();
                live.dedup();
                prop_assert_eq!(live.len(), n, "sibling channels must differ");
            }
        }
    }
}

// ------------------------------------------------------------- queues

proptest! {
    /// A bounded queue conserves packets: enqueued = dequeued + still
    /// inside, and drops only happen at capacity.
    #[test]
    fn packet_queue_conservation(
        cap in 1usize..16,
        ops in prop::collection::vec(any::<bool>(), 1..200),
    ) {
        let mut q: PacketQueue<u32> = PacketQueue::new(cap);
        let mut pushed = 0u64;
        for (i, push) in ops.into_iter().enumerate() {
            if push {
                if q.push(i as u32).is_ok() {
                    pushed += 1;
                }
            } else {
                q.pop();
            }
            prop_assert!(q.len() <= cap);
        }
        let stats = q.stats();
        prop_assert_eq!(stats.enqueued, pushed);
        prop_assert_eq!(stats.enqueued, stats.dequeued + q.len() as u64);
    }
}

// ------------------------------------------------------------ tracker

proptest! {
    /// PDR stays within [0, 100] and deliveries never exceed
    /// generations, whatever the event interleaving.
    #[test]
    fn tracker_invariants(events in prop::collection::vec((any::<bool>(), 0u64..30), 1..150)) {
        let mut t = PacketTracker::new();
        for (i, (deliver, id)) in events.into_iter().enumerate() {
            let now = SimTime::from_millis(i as u64 * 10);
            if deliver {
                t.record_delivered(PacketId::new(id), now, 1);
            } else {
                t.record_generated(PacketId::new(id), NodeId::new(0), now);
            }
        }
        prop_assert!(t.delivered() <= t.generated());
        prop_assert!((0.0..=100.0).contains(&t.pdr_percent()));
        prop_assert_eq!(t.generated(), t.delivered() + t.lost());
    }
}

/// The pre-SoA `PacketTracker`: two `BTreeMap<PacketId, …>`s, kept
/// verbatim as a behavioral reference for `tracker_matches_reference`.
#[derive(Default)]
struct ReferenceTracker {
    window: Option<(SimTime, SimTime)>,
    generated: std::collections::BTreeMap<PacketId, (NodeId, SimTime)>,
    delivered: std::collections::BTreeMap<PacketId, (SimTime, u8)>,
    duplicates: u64,
    stray_deliveries: u64,
}

impl ReferenceTracker {
    fn set_window(&mut self, start: SimTime, end: SimTime) {
        assert!(end > start);
        self.window = Some((start, end));
        self.generated.retain(|_, (_, t)| *t >= start && *t < end);
        let generated = &self.generated;
        self.delivered.retain(|id, _| generated.contains_key(id));
    }

    fn in_window(&self, t: SimTime) -> bool {
        match self.window {
            Some((s, e)) => t >= s && t < e,
            None => true,
        }
    }

    fn record_generated(&mut self, id: PacketId, origin: NodeId, now: SimTime) {
        if self.in_window(now) {
            self.generated.insert(id, (origin, now));
        }
    }

    // Verbatim port of the old implementation — keep its shape.
    #[allow(clippy::map_entry)]
    fn record_delivered(&mut self, id: PacketId, now: SimTime, hops: u8) {
        if !self.generated.contains_key(&id) {
            self.stray_deliveries += 1;
        } else if self.delivered.contains_key(&id) {
            self.duplicates += 1;
        } else {
            self.delivered.insert(id, (now, hops));
        }
    }

    fn pdr_percent(&self) -> f64 {
        if self.generated.is_empty() {
            return 100.0;
        }
        100.0 * self.delivered.len() as f64 / self.generated.len() as f64
    }

    fn mean_delay_ms(&self) -> f64 {
        if self.delivered.is_empty() {
            return 0.0;
        }
        let sum: f64 = self
            .delivered
            .iter()
            .map(|(id, (t_rx, _))| t_rx.saturating_since(self.generated[id].1).as_millis_f64())
            .sum();
        sum / self.delivered.len() as f64
    }

    fn mean_hops(&self) -> f64 {
        if self.delivered.is_empty() {
            return 0.0;
        }
        let sum: u64 = self.delivered.values().map(|(_, h)| u64::from(*h)).sum();
        sum as f64 / self.delivered.len() as f64
    }

    fn by_origin(&self, delivered_only: bool) -> std::collections::BTreeMap<NodeId, u64> {
        let mut map = std::collections::BTreeMap::new();
        for (id, (origin, _)) in &self.generated {
            if !delivered_only || self.delivered.contains_key(id) {
                *map.entry(*origin).or_insert(0) += 1;
            }
        }
        map
    }
}

/// One tracker event: origin lane, per-origin sequence, and what happens.
/// `Stray` delivers a sequence number far past anything generated.
fn arb_tracker_op() -> impl Strategy<Value = (u8, u16, u64, u8)> {
    (0u8..6, 1u16..4, 0u64..20, 1u8..5)
}

fn tracker_id(origin: u16, seq: u64) -> PacketId {
    PacketId::new((u64::from(origin) << 48) | seq)
}

proptest! {
    /// The SoA tracker is behaviorally identical to the old BTreeMap
    /// implementation over random generate / deliver / duplicate / stray
    /// sequences with the engine's warm-up → window → measure → close
    /// window discipline: same counts, PDR, delay, hops and per-origin
    /// maps.
    #[test]
    fn tracker_matches_reference(
        warmup in prop::collection::vec(arb_tracker_op(), 0..60),
        measured in prop::collection::vec(arb_tracker_op(), 0..120),
    ) {
        let window_start = SimTime::from_secs(10);
        let mut t = PacketTracker::new();
        let mut r = ReferenceTracker::default();
        let apply = |t: &mut PacketTracker, r: &mut ReferenceTracker,
                         op: &(u8, u16, u64, u8), now: SimTime| {
            let (kind, origin, seq, hops) = *op;
            match kind {
                // Weight generation highest so deliveries usually land.
                // The engine never reuses a packet id, so re-generating
                // an id that was already *delivered* is out of model
                // (the old map impl would retroactively rewrite that
                // packet's delay; the streaming stats cannot) —
                // re-generating an undelivered id stays covered.
                0..=2 => {
                    let id = tracker_id(origin, seq);
                    if !r.delivered.contains_key(&id) {
                        t.record_generated(id, NodeId::new(origin), now);
                        r.record_generated(id, NodeId::new(origin), now);
                    }
                }
                3..=4 => {
                    let id = tracker_id(origin, seq);
                    t.record_delivered(id, now, hops);
                    r.record_delivered(id, now, hops);
                }
                _ => {
                    let id = tracker_id(origin, seq + 40); // never generated
                    t.record_delivered(id, now, hops);
                    r.record_delivered(id, now, hops);
                }
            }
        };
        // Warm-up: both trackers see formation traffic before any window.
        for (i, op) in warmup.iter().enumerate() {
            apply(&mut t, &mut r, op, SimTime::from_millis(i as u64 * 7));
        }
        // start_measurement: purge warm-up state.
        t.set_window(window_start, SimTime::MAX);
        r.set_window(window_start, SimTime::MAX);
        prop_assert_eq!(t.generated(), r.generated.len() as u64);
        prop_assert_eq!(t.delivered(), r.delivered.len() as u64);
        // Measured phase.
        let mut last = window_start;
        for (i, op) in measured.iter().enumerate() {
            last = window_start + gtt_sim::SimDuration::from_millis((i as u64 + 1) * 7);
            apply(&mut t, &mut r, op, last);
        }
        // finish_measurement: close the window just past the last event.
        let window_end = last + gtt_sim::SimDuration::from_millis(1);
        t.set_window(window_start, window_end);
        r.set_window(window_start, window_end);

        prop_assert_eq!(t.generated(), r.generated.len() as u64);
        prop_assert_eq!(t.delivered(), r.delivered.len() as u64);
        prop_assert_eq!(t.duplicates(), r.duplicates);
        prop_assert_eq!(t.stray_deliveries(), r.stray_deliveries);
        prop_assert_eq!(t.pdr_percent(), r.pdr_percent());
        prop_assert_eq!(t.mean_hops(), r.mean_hops());
        // Integer-nanosecond sum vs the old f64 running sum: equal up to
        // summation-order rounding.
        let (a, b) = (t.mean_delay_ms(), r.mean_delay_ms());
        prop_assert!((a - b).abs() <= 1e-9 * b.abs().max(1.0), "{} vs {}", a, b);
        prop_assert_eq!(t.generated_by_origin(), r.by_origin(false));
        prop_assert_eq!(t.delivered_by_origin(), r.by_origin(true));
    }
}

// ----------------------------------------------------------------- sim

proptest! {
    /// The event queue is a stable priority queue: pops come out in
    /// non-decreasing time order, FIFO within a timestamp.
    #[test]
    fn event_queue_ordering(times in prop::collection::vec(0u64..1000, 1..100)) {
        let mut q = EventQueue::new();
        for (i, t) in times.iter().enumerate() {
            q.schedule(SimTime::from_millis(*t), (i, *t));
        }
        let mut last_time = SimTime::ZERO;
        let mut last_seq_at_time = std::collections::BTreeMap::new();
        while let Some((t, (seq, _))) = q.pop() {
            prop_assert!(t >= last_time);
            if let Some(&prev) = last_seq_at_time.get(&t) {
                prop_assert!(seq > prev, "FIFO within equal timestamps");
            }
            last_seq_at_time.insert(t, seq);
            last_time = t;
        }
    }

    /// PCG outputs respect requested ranges for arbitrary bounds.
    #[test]
    fn pcg_range_respected(seed in any::<u64>(), lo in 0u32..1000, span in 1u32..1000) {
        let mut rng = Pcg32::new(seed);
        for _ in 0..50 {
            let v = rng.gen_range_u32(lo, lo + span);
            prop_assert!((lo..lo + span).contains(&v));
        }
    }

    /// Channel hopping is periodic in the sequence length and never
    /// leaves the sequence.
    #[test]
    fn hopping_stays_in_sequence(asn in any::<u32>(), offset in 0u8..8) {
        let hop = HoppingSequence::paper_default();
        let ch = hop.channel(Asn::new(asn as u64), ChannelOffset::new(offset));
        prop_assert!(hop.channels().contains(&ch));
        let again = hop.channel(Asn::new(asn as u64 + 8), ChannelOffset::new(offset));
        prop_assert_eq!(ch, again, "period 8");
    }
}

// --------------------------------------------------------- radio medium

/// The brute-force O(listeners × transmissions) slot resolution the
/// medium's per-channel index replaced, reimplemented over the public
/// topology API with its own (identically-derived) per-node draw
/// streams. Forward draws are keyed by the listening node and ACK draws
/// by the transmitting node, exactly as the production path keys them,
/// so the streams stay aligned without depending on any cross-node
/// iteration order.
#[allow(clippy::type_complexity)]
fn reference_resolve(
    topology: &Topology,
    draws: &mut DrawStreams,
    transmissions: &[Transmission<u8>],
    listeners: &[Listener],
) -> (Vec<(NodeId, RxOutcome<u8>)>, Vec<Option<bool>>) {
    let mut rx = Vec::new();
    let mut decoded: Vec<Vec<NodeId>> = vec![Vec::new(); transmissions.len()];
    for listener in listeners {
        if transmissions.iter().any(|t| t.frame.src == listener.node) {
            rx.push((listener.node, RxOutcome::Idle));
            continue;
        }
        let mut audible = 0usize;
        let mut first = usize::MAX;
        for (i, t) in transmissions.iter().enumerate() {
            if t.channel == listener.channel && topology.audible(t.frame.src, listener.node) {
                audible += 1;
                if audible == 1 {
                    first = i;
                }
            }
        }
        let outcome = match audible {
            0 => RxOutcome::Idle,
            1 => {
                let tx = &transmissions[first];
                let prr = topology.prr(tx.frame.src, listener.node);
                if prr > 0.0 && draws.gen_bool(listener.node, prr) {
                    decoded[first].push(listener.node);
                    RxOutcome::Received(tx.frame.clone())
                } else {
                    RxOutcome::Faded
                }
            }
            n => RxOutcome::Collision(n),
        };
        rx.push((listener.node, outcome));
    }
    let acked = transmissions
        .iter()
        .enumerate()
        .map(|(i, t)| match t.frame.dst {
            Dest::Broadcast => None,
            Dest::Unicast(dst) => {
                if !decoded[i].contains(&dst) {
                    Some(false)
                } else {
                    let reverse = topology.prr(dst, t.frame.src);
                    Some(reverse > 0.0 && draws.gen_bool(t.frame.src, reverse))
                }
            }
        })
        .collect();
    (rx, acked)
}

proptest! {
    /// The per-channel-grouped, zero-alloc `resolve_slot_into` is
    /// observationally identical to the brute-force scan it replaced:
    /// same outcomes, same ACKs, same RNG draw order — across random
    /// topologies, channel assignments (collisions included) and
    /// multi-slot sequences through one reused outcome buffer.
    #[test]
    fn medium_resolve_matches_brute_force_reference(
        seed in 0u64..1_000_000,
        n in 4usize..12,
        slots in 1usize..8,
    ) {
        let mut layout = Pcg32::new(seed ^ 0x9e37_79b9);
        let side = 60.0 + layout.gen_f64() * 60.0;
        let topology = TopologyBuilder::new(45.0)
            .link_model(LinkModel::DistanceFalloff { plateau: 0.4, edge_prr: 0.6 })
            .interference_factor(1.0 + layout.gen_f64())
            .nodes((0..n).map(|_| {
                Position::new(layout.gen_f64() * side, layout.gen_f64() * side)
            }))
            .build();
        // Three channels force same-channel collisions regularly.
        let channels = [17u8, 23, 15].map(PhysicalChannel::new);

        let mut medium = RadioMedium::new(topology.clone(), Pcg32::new(seed));
        let mut reference_draws = DrawStreams::new(Pcg32::new(seed), topology.len());
        let mut out = SlotOutcomes::default();

        for slot in 0..slots {
            // Random slot inputs: each node transmits (p = 1/3), with a
            // random channel and destination; every non-transmitter
            // listens (p = 3/4) on a random channel. Half-duplex holds
            // by construction, as in the engine.
            let mut transmissions = Vec::new();
            let mut listeners = Vec::new();
            for i in 0..n {
                let id = NodeId::from_index(i);
                if layout.gen_f64() < 1.0 / 3.0 {
                    let dst = if layout.gen_f64() < 0.5 {
                        Dest::Broadcast
                    } else {
                        let mut peer = layout.gen_range_u32(0, n as u32 - 1) as usize;
                        if peer >= i {
                            peer += 1;
                        }
                        Dest::Unicast(NodeId::from_index(peer))
                    };
                    transmissions.push(Transmission {
                        channel: channels[layout.gen_range_u32(0, 3) as usize],
                        frame: Frame::new(
                            PacketId::new(slot as u64),
                            id,
                            dst,
                            SimTime::ZERO,
                            i as u8,
                        ),
                    });
                } else if layout.gen_f64() < 0.75 {
                    listeners.push(Listener {
                        node: id,
                        channel: channels[layout.gen_range_u32(0, 3) as usize],
                    });
                }
            }

            let (expected_rx, expected_acked) =
                reference_resolve(&topology, &mut reference_draws, &transmissions, &listeners);
            medium.resolve_slot_into(&transmissions, &listeners, &mut out);
            prop_assert_eq!(&out.rx, &expected_rx, "slot {} rx diverged", slot);
            prop_assert_eq!(&out.acked, &expected_acked, "slot {} acks diverged", slot);
        }
    }
}

// ------------------------------------------- spatial audibility index

/// The brute-force O(n²) adjacency the grid-bucketed spatial index
/// replaced, recomputed over the public pairwise geometry API (which is
/// independent of the index): per-node audible peers and in-range
/// peers, both in id order.
fn reference_adjacency(topo: &Topology) -> (Vec<Vec<NodeId>>, Vec<Vec<NodeId>>) {
    let audible = topo
        .node_ids()
        .map(|a| topo.node_ids().filter(|&b| topo.audible(a, b)).collect())
        .collect();
    let in_range = topo
        .node_ids()
        .map(|a| topo.node_ids().filter(|&b| topo.in_range(a, b)).collect())
        .collect();
    (audible, in_range)
}

/// DFS connected components over the reference audible adjacency — the
/// pre-union-find islands algorithm, in the same canonical form
/// (members sorted, islands ordered by smallest member).
fn reference_islands(audible: &[Vec<NodeId>]) -> Vec<Vec<NodeId>> {
    let n = audible.len();
    let mut seen = vec![false; n];
    let mut islands = Vec::new();
    let mut stack = Vec::new();
    for start in 0..n {
        if seen[start] {
            continue;
        }
        let mut members = Vec::new();
        seen[start] = true;
        stack.push(start);
        while let Some(i) = stack.pop() {
            members.push(NodeId::from_index(i));
            for &nb in &audible[i] {
                if !seen[nb.index()] {
                    seen[nb.index()] = true;
                    stack.push(nb.index());
                }
            }
        }
        members.sort_unstable();
        islands.push(members);
    }
    islands
}

/// Every index-backed query must match the brute-force reference
/// byte-for-byte (`Vec<NodeId>` equality is byte equality for u16 ids).
fn assert_matches_reference(topo: &Topology) -> Result<(), TestCaseError> {
    let (audible, in_range) = reference_adjacency(topo);
    for (i, id) in topo.node_ids().enumerate() {
        prop_assert_eq!(
            topo.audible_neighbors(id),
            audible[i].as_slice(),
            "audible row of n{} diverged",
            i
        );
        prop_assert_eq!(
            topo.neighbors(id),
            in_range[i].as_slice(),
            "in-range row of n{} diverged",
            i
        );
    }
    prop_assert_eq!(topo.audibility_islands(), reference_islands(&audible));
    Ok(())
}

proptest! {
    /// The spatial index is invisible: audibility rows, in-range rows
    /// and islands equal the brute-force O(n²) reference over random
    /// topologies and random `set_position` sequences (local rewalks
    /// and island-splitting teleports alike), and the incrementally-
    /// maintained topology stays fully equal — grid internals included —
    /// to one built from scratch at the final positions.
    #[test]
    fn spatial_index_matches_brute_force_adjacency(
        seed in 0u64..1_000_000,
        n in 1usize..20,
        moves in 0usize..12,
    ) {
        let mut layout = Pcg32::new(seed ^ 0x51ce_b00c);
        // Sides from ~1 to ~9 grid cells: exercises everything from
        // "all nodes in one bucket" to sparse multi-island spreads.
        let side = 50.0 + layout.gen_f64() * 350.0;
        let mut topo = TopologyBuilder::new(45.0)
            .interference_factor(1.0 + layout.gen_f64())
            .nodes((0..n).map(|_| {
                Position::new(layout.gen_f64() * side, layout.gen_f64() * side)
            }))
            .build();
        assert_matches_reference(&topo)?;
        for _ in 0..moves {
            let node = NodeId::from_index(layout.gen_range_u32(0, n as u32) as usize);
            let to = if layout.gen_f64() < 0.2 {
                // Teleport far off the populated grid: forces island
                // splits and empty-bucket erasure.
                Position::new(side * 4.0 + layout.gen_f64() * side, side * 4.0)
            } else {
                Position::new(layout.gen_f64() * side, layout.gen_f64() * side)
            };
            topo.set_position(node, to);
            assert_matches_reference(&topo)?;
        }
        let rebuilt = TopologyBuilder::new(topo.range())
            .interference_factor(topo.interference_factor())
            .nodes(topo.node_ids().map(|id| topo.position(id)).collect::<Vec<_>>())
            .build();
        prop_assert_eq!(&topo, &rebuilt, "incremental state diverged from a fresh build");
    }
}
