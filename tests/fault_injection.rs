//! Robustness under faults: node death, link degradation, and the
//! adaptive reactions the paper's design promises (ETX cost in the game,
//! RPL parent switching, 6P re-negotiation).

use gtt_net::{LinkModel, NodeId, Position, TopologyBuilder};
use gtt_sim::SimDuration;
use gtt_workload::{Experiment, RunSpec, Scenario, ScenarioSpec, SchedulerKind};

/// A diamond: root n0; two relays n1/n2 both in range of the root; leaf
/// n3 in range of both relays but not the root. Traffic n3 → n0 can take
/// either relay. A hand-built topology — carried as a `Custom` spec.
fn diamond() -> ScenarioSpec {
    let topology = TopologyBuilder::new(40.0)
        .link_model(LinkModel::Perfect)
        .node(Position::new(0.0, 0.0)) // n0 root
        .node(Position::new(30.0, 18.0)) // n1 relay
        .node(Position::new(30.0, -18.0)) // n2 relay
        .node(Position::new(60.0, 0.0)) // n3 leaf
        .build();
    assert!(topology.is_connected());
    ScenarioSpec::custom(Scenario {
        name: "diamond".into(),
        topology,
        roots: vec![NodeId::new(0)],
    })
}

/// Builds the scenario's network through the one experiment seam.
fn network(scenario: ScenarioSpec, spec: RunSpec) -> gtt_engine::Network {
    Experiment::new(scenario, SchedulerKind::gt_tsch_default())
        .with_run(spec)
        .build_network()
}

#[test]
fn leaf_survives_relay_death_via_parent_switch() {
    let spec = RunSpec {
        traffic_ppm: 30.0,
        warmup_secs: 120,
        measure_secs: 180,
        seed: 2,
        ..RunSpec::default()
    };
    let mut net = network(diamond(), spec);
    net.run_for(SimDuration::from_secs(spec.warmup_secs));
    assert_eq!(net.join_ratio(), 1.0);

    let leaf = NodeId::new(3);
    let relay = net.node(leaf).rpl.parent().expect("leaf joined");
    assert!(relay == NodeId::new(1) || relay == NodeId::new(2));
    let other = if relay == NodeId::new(1) {
        NodeId::new(2)
    } else {
        NodeId::new(1)
    };

    // Kill the relay mid-run; give RPL time to expire it and fail over.
    net.kill_node(relay);
    net.run_for(SimDuration::from_secs(650)); // > neighbor_timeout (600 s)

    assert_eq!(
        net.node(leaf).rpl.parent(),
        Some(other),
        "leaf must fail over to the surviving relay"
    );

    // Data still flows end to end after the failover.
    net.start_measurement();
    net.run_for(SimDuration::from_secs(spec.measure_secs));
    net.finish_measurement();
    let report = net.report();
    assert!(
        report.row.pdr_percent > 90.0,
        "post-failover PDR: {:.1}%",
        report.row.pdr_percent
    );
}

#[test]
fn dead_nodes_stay_silent() {
    let spec = RunSpec {
        traffic_ppm: 30.0,
        warmup_secs: 60,
        measure_secs: 60,
        seed: 3,
        ..RunSpec::default()
    };
    let mut net = network(diamond(), spec);
    net.run_for(SimDuration::from_secs(30));
    let victim = NodeId::new(2);
    let before = net.node(victim).mac.counters();
    net.kill_node(victim);
    assert!(!net.node(victim).is_alive());
    net.run_for(SimDuration::from_secs(30));
    let after = net.node(victim).mac.counters();
    assert_eq!(before.slots, after.slots, "a dead node's MAC never runs");
}

#[test]
fn etx_rises_on_degraded_link_and_rank_follows() {
    // Degrade the leaf's uplink: the MAC's ETX estimate must climb, and
    // MRHOF must propagate it into the Rank (paper §VII-B inputs).
    let spec = RunSpec {
        traffic_ppm: 60.0,
        warmup_secs: 120,
        measure_secs: 60,
        seed: 4,
        ..RunSpec::default()
    };
    let mut net = network(ScenarioSpec::line(3, 30.0), spec);
    net.run_for(SimDuration::from_secs(spec.warmup_secs));
    let leaf = NodeId::new(2);
    let parent = net.node(leaf).rpl.parent().expect("joined");
    let etx_before = net.node(leaf).mac.etx(parent);
    let rank_before = net.node(leaf).rpl.rank();

    net.set_link_prr_symmetric(leaf, parent, 0.45);
    net.run_for(SimDuration::from_secs(240));

    let etx_after = net.node(leaf).mac.etx(parent);
    assert!(
        etx_after > etx_before + 0.5,
        "ETX must rise: {etx_before:.2} → {etx_after:.2}"
    );
    assert!(
        net.node(leaf).rpl.rank() > rank_before,
        "Rank must grow with the degraded link"
    );
}

#[test]
fn network_still_delivers_over_degraded_links() {
    // Retransmissions + the game's link cost keep the network alive at
    // PRR 0.6, at reduced efficiency.
    let spec = RunSpec {
        traffic_ppm: 30.0,
        warmup_secs: 150,
        measure_secs: 180,
        seed: 5,
        ..RunSpec::default()
    };
    let scenario = ScenarioSpec::two_dodag(6).with_link_model(LinkModel::Fixed(0.6));
    let mut net = network(scenario, spec);
    net.run_for(SimDuration::from_secs(spec.warmup_secs));
    assert!(net.join_ratio() > 0.8, "formation over lossy links");
    net.start_measurement();
    net.run_for(SimDuration::from_secs(spec.measure_secs));
    net.finish_measurement();
    let report = net.report();
    assert!(
        report.row.pdr_percent > 60.0,
        "PDR over 0.6-PRR links: {:.1}%",
        report.row.pdr_percent
    );
}

#[test]
fn root_death_is_not_catastrophic_for_the_other_dodag() {
    // Two isolated DODAGs: killing one root must not affect the other's
    // delivery at all (cross-DODAG isolation, §VIII).
    let spec = RunSpec {
        traffic_ppm: 60.0,
        warmup_secs: 120,
        measure_secs: 120,
        seed: 6,
        ..RunSpec::default()
    };
    let mut net = network(ScenarioSpec::two_dodag(6), spec);
    net.run_for(SimDuration::from_secs(spec.warmup_secs));
    net.kill_node(NodeId::new(0)); // first DODAG's root dies
    net.start_measurement();
    net.run_for(SimDuration::from_secs(spec.measure_secs));
    net.finish_measurement();

    // Packets of DODAG B (origins n6..n11) still arrive.
    let by_origin = net.tracker().delivered_by_origin();
    let dodag_b_delivered: u64 = (6..12u16)
        .filter_map(|i| by_origin.get(&NodeId::new(i)))
        .sum();
    assert!(
        dodag_b_delivered > 300,
        "DODAG B must keep delivering, got {dodag_b_delivered}"
    );
}
