//! Steady-state allocation accounting for the per-slot hot path.
//!
//! The output-sensitive slot-resolution work (per-channel transmitter
//! buckets, reusable slot buffers, drain-into-scratch control-plane
//! layers) claims that once a simulation's buffers have warmed up, the
//! engine performs **zero heap allocations per slot**: not "few", zero.
//! These tests pin that with a counting global allocator — any future
//! `Vec::new()` that sneaks back onto the hot path fails the suite with
//! an exact allocation count instead of silently eroding throughput.
//!
//! Scope: the radio/slot machinery and the steady-state control plane
//! (EBs, Trickle DIOs, DAO refreshes). End-to-end *packet tracking* is
//! exempt by design — the tracker records every generated data packet in
//! a map, which is per-packet bookkeeping, not per-slot work — so the
//! engine window runs a converged control-plane-only network.

// The counting allocator needs `unsafe` (GlobalAlloc is an unsafe
// trait); the workspace-level `deny` is lifted for this one test binary.
#![allow(unsafe_code)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

use gtt_engine::{EngineConfig, MinimalSchedule, Network};
use gtt_net::{
    Dest, Frame, LinkModel, Listener, NodeId, PacketId, PhysicalChannel, Position, RadioMedium,
    SlotOutcomes, Topology, TopologyBuilder, Transmission,
};
use gtt_sim::{Pcg32, SimDuration, SimTime};

/// `System` with an allocation counter scoped to the *measuring
/// thread* (frees are not counted — the assertion is about allocation
/// pressure, not leaks). Only allocations made while the thread-local
/// `COUNTING` flag is set are counted: the libtest harness's own
/// threads allocate at unpredictable times (channel wake-ups, output
/// capture), and a process-global counter would flake on them.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static COUNTING: Cell<bool> = const { Cell::new(false) };
}

/// True when the current thread is inside a measured window.
/// `try_with`: allocations during thread-local teardown must not panic.
fn counting_here() -> bool {
    COUNTING.try_with(Cell::get).unwrap_or(false)
}

// SAFETY: defers entirely to `System`; the only addition is a relaxed
// counter increment, which cannot violate any allocator invariant.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if counting_here() {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        // SAFETY: forwarded verbatim; caller upholds `layout` validity.
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: forwarded verbatim; caller guarantees `ptr`/`layout`
        // came from this allocator.
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if counting_here() {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        // SAFETY: forwarded verbatim; caller upholds the realloc
        // contract (live ptr, matching layout, non-zero new_size).
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Counts this thread's allocations during `f`.
fn count_allocs(f: impl FnOnce()) -> u64 {
    let before = ALLOCS.load(Ordering::Relaxed);
    COUNTING.with(|c| c.set(true));
    f();
    COUNTING.with(|c| c.set(false));
    ALLOCS.load(Ordering::Relaxed) - before
}

/// A 12-node clique so every transmission is audible everywhere — the
/// worst case for per-slot listener work.
fn clique(n: u16) -> Topology {
    TopologyBuilder::new(500.0)
        .link_model(LinkModel::Fixed(0.9))
        .nodes((0..n).map(|i| Position::new(f64::from(i) * 5.0, 0.0)))
        .build()
}

fn tx(src: u16, dst: Dest, ch: u8) -> Transmission<u64> {
    Transmission {
        channel: PhysicalChannel::new(ch),
        frame: Frame::new(PacketId::new(0), NodeId::new(src), dst, SimTime::ZERO, 7),
    }
}

/// Both assertions live in one `#[test]`, each wrapped in
/// [`count_allocs`] so only this thread's allocations are measured.
#[test]
fn steady_state_slot_path_performs_zero_allocations() {
    // --- Medium: resolve_slot_into is allocation-free once warm. ---
    let mut medium = RadioMedium::new(clique(12), Pcg32::new(42));
    let transmissions = vec![
        tx(0, Dest::Unicast(NodeId::new(3)), 17),
        tx(1, Dest::Broadcast, 23),
        tx(2, Dest::Unicast(NodeId::new(4)), 17),
    ];
    let listeners: Vec<Listener> = (3..12)
        .map(|i| Listener {
            node: NodeId::new(i),
            channel: PhysicalChannel::new(if i % 2 == 0 { 17 } else { 23 }),
        })
        .collect();
    let mut out = SlotOutcomes::default();
    // Warm-up call grows every scratch buffer to its steady-state size.
    medium.resolve_slot_into(&transmissions, &listeners, &mut out);
    let during = count_allocs(|| {
        for _ in 0..100 {
            medium.resolve_slot_into(&transmissions, &listeners, &mut out);
        }
    });
    assert_eq!(
        during, 0,
        "resolve_slot_into must not allocate once its buffers are warm"
    );

    // --- Engine: a converged network's slots are allocation-free. ---
    // Control plane only (EBs, Trickle DIOs, DAO refreshes): data-packet
    // tracking is per-packet map bookkeeping and deliberately out of
    // scope, so no application traffic is configured.
    let topo = TopologyBuilder::new(40.0)
        .link_model(LinkModel::default())
        .nodes((0..7).map(|i| {
            let angle = f64::from(i) * std::f64::consts::TAU / 7.0;
            Position::new(25.0 * angle.cos(), 25.0 * angle.sin())
        }))
        .build();
    let mut net = Network::builder(topo, EngineConfig::default())
        .root(NodeId::new(0))
        .scheduler_factory(|_, _| Box::new(MinimalSchedule::new(8)))
        .build();
    // The frame-tap seam ships disabled; this leg doubles as the proof
    // that a disabled tap costs nothing — with no tap installed the
    // slot path performs zero allocations, wire-encoding included.
    assert!(!net.frame_tap_installed(), "taps are opt-in");
    // Long warm-up: the DODAG converges, Trickle stretches, every queue,
    // heap and scratch buffer reaches its steady-state capacity.
    net.run_for(SimDuration::from_secs(180));
    let during = count_allocs(|| net.run_for(SimDuration::from_secs(60)));
    assert_eq!(
        during, 0,
        "steady-state Network::run_for allocated {during} times in 60 s \
         (4000 slots) — the slot hot path must be allocation-free"
    );
}
