//! Trace-export invariants: the frame tap is a pure observer.
//!
//! The pcap capture a traced run produces must be (a) **inert** — the
//! [`gtt_engine::NetworkReport`] is identical with and without the tap
//! installed, on the event core and on the `naive-step` oracle — and
//! (b) **pure** — the capture bytes are a deterministic function of the
//! [`Experiment`] alone: two runs, two processes, two machines, same
//! bytes. A committed FNV-1a hash pins the whole wire codec + tap +
//! pcap pipeline; if it moves, either the codec changed (bump the
//! golden deliberately) or determinism broke (fix the engine).

use gtt_workload::{Experiment, NoiseBurst, Overlay, RunSpec, ScenarioSpec, SchedulerKind};

/// The reference experiment of this suite: the fig8 topology family at
/// light load with a noise overlay (so retransmissions, queue churn and
/// link flaps all appear in the capture), shrunk to test-sized windows.
fn traced_experiment() -> Experiment {
    Experiment::new(ScenarioSpec::two_dodag(6), SchedulerKind::gt_tsch_default())
        .with_run(RunSpec {
            traffic_ppm: 30.0,
            warmup_secs: 30,
            measure_secs: 60,
            seed: 1,
            ..RunSpec::default()
        })
        .with_overlay(Overlay::Noise(NoiseBurst::wifi_like()))
}

/// 64-bit FNV-1a — tiny, dependency-free, and stable across platforms;
/// exactly what a golden-trace fingerprint needs.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

#[test]
fn tap_is_inert_reports_identical_with_and_without() {
    let exp = traced_experiment();
    let plain = exp.run();
    let (traced, capture) = exp.run_traced();
    assert_eq!(
        plain, traced,
        "installing a frame tap changed the NetworkReport — taps must be observers"
    );
    assert!(!capture.is_empty(), "traced run produced no capture");
}

#[test]
fn traces_are_byte_identical_across_runs() {
    let exp = traced_experiment();
    let (_, first) = exp.run_traced();
    let (_, second) = exp.run_traced();
    assert_eq!(
        first, second,
        "same Experiment, different trace bytes — trace purity broken"
    );
}

#[test]
fn trace_is_a_structurally_valid_pcap() {
    let (_, capture) = traced_experiment().run_traced();
    let summary = gtt_frame::pcap::validate(&capture).expect("capture must validate");
    assert!(summary.packets > 0, "empty capture");
    assert_eq!(
        capture.len(),
        gtt_frame::pcap::GLOBAL_HEADER_LEN
            + summary.packets * gtt_frame::pcap::RECORD_HEADER_LEN
            + summary.frame_bytes,
        "pcap accounting must cover every byte"
    );
}

/// The committed golden fingerprint of [`traced_experiment`]'s capture.
///
/// This hash is a deliberate ratchet: it moves **only** when the wire
/// codec, the tap seam, or the engine's transmission schedule changes.
/// If you changed the 802.15.4 encoding on purpose, re-run with
/// `BLESS=1 cargo test -p gtt-tests --test trace -- golden` and commit
/// the printed value; if you didn't, a moved hash means a determinism
/// regression.
const GOLDEN_TRACE_FNV1A: u64 = 0xd1e0_0f4f_6f79_f1c2;

#[test]
fn golden_trace_fingerprint() {
    let (_, capture) = traced_experiment().run_traced();
    let hash = fnv1a(&capture);
    if std::env::var_os("BLESS").is_some() {
        println!(
            "GOLDEN_TRACE_FNV1A: 0x{hash:016x} ({} bytes)",
            capture.len()
        );
        return;
    }
    assert_eq!(
        hash,
        GOLDEN_TRACE_FNV1A,
        "golden trace fingerprint moved (got 0x{hash:016x}, {} bytes) — \
         see the constant's doc comment for whether to bless or bisect",
        capture.len()
    );
}

/// With the `naive-step` oracle enabled, the exhaustive per-slot loop
/// must emit the byte-identical capture: both cores share the same
/// `process_slot` tap seam, and this pins that they keep doing so.
#[cfg(feature = "naive-step")]
#[test]
fn oracle_core_emits_the_identical_trace() {
    let exp = traced_experiment();
    let (event_report, event_trace) = exp.run_traced();
    let mut oracle_net = exp.network_builder().naive_stepping().build();
    let (oracle_report, oracle_trace) = exp.run_traced_on(&mut oracle_net);
    assert_eq!(event_report, oracle_report, "reports diverge under tracing");
    assert_eq!(
        event_trace, oracle_trace,
        "event core and naive-step oracle captured different traces"
    );
}
