//! The paper's headline qualitative claims (§VIII), asserted on reduced
//! but faithful runs: who wins, in which direction, by a safe margin.
//! The full-size sweeps live in the `fig8`/`fig9`/`fig10` binaries.

use gtt_metrics::FigureRow;
use gtt_workload::{Experiment, NoiseBurst, Overlay, RunSpec, ScenarioSpec, SchedulerKind};

fn spec(ppm: f64, seed: u64) -> RunSpec {
    RunSpec {
        traffic_ppm: ppm,
        warmup_secs: 120,
        measure_secs: 120,
        seed,
        ..RunSpec::default()
    }
}

/// A shortened Fig. 8-style run (smaller network + window to stay fast
/// in debug builds, same structure).
fn measure(scheduler: &SchedulerKind, ppm: f64, seed: u64) -> FigureRow {
    Experiment::new(ScenarioSpec::two_dodag(6), scheduler.clone())
        .with_run(spec(ppm, seed))
        .run()
        .row
}

#[test]
fn gt_tsch_keeps_pdr_high_under_heavy_load() {
    // Fig. 8a: "GT-TSCH keeps its PDR higher than 98%".
    let row = measure(&SchedulerKind::gt_tsch_default(), 120.0, 1);
    assert!(
        row.pdr_percent > 95.0,
        "GT-TSCH PDR at 120 ppm: {:.1}%",
        row.pdr_percent
    );
    assert!(row.queue_loss < 5.0, "queue loss {:.1}", row.queue_loss);
}

#[test]
fn orchestra_collapses_under_heavy_load() {
    // Fig. 8a: "the performance of Orchestra dramatically decreased …
    // under high traffic load".
    let light = measure(&SchedulerKind::orchestra_default(), 30.0, 1);
    let heavy = measure(&SchedulerKind::orchestra_default(), 120.0, 1);
    assert!(
        light.pdr_percent > 90.0,
        "Orchestra must be fine at 30 ppm: {:.1}%",
        light.pdr_percent
    );
    assert!(
        heavy.pdr_percent < 70.0,
        "Orchestra must degrade at 120 ppm: {:.1}%",
        heavy.pdr_percent
    );
}

#[test]
fn gt_tsch_beats_orchestra_on_every_figure_series_at_high_load() {
    // The Fig. 8 cross-scheduler ordering at 120 ppm.
    let gt = measure(&SchedulerKind::gt_tsch_default(), 120.0, 2);
    let orch = measure(&SchedulerKind::orchestra_default(), 120.0, 2);

    assert!(gt.pdr_percent > orch.pdr_percent + 20.0, "PDR gap");
    assert!(gt.delay_ms < orch.delay_ms / 2.0, "delay gap");
    assert!(gt.loss_per_min < orch.loss_per_min / 2.0, "loss gap");
    assert!(
        gt.queue_loss < orch.queue_loss / 2.0 + 1.0,
        "queue-loss gap"
    );
    assert!(
        gt.received_per_min > orch.received_per_min * 1.5,
        "throughput: GT {:.0}/min vs Orchestra {:.0}/min",
        gt.received_per_min,
        orch.received_per_min
    );
}

#[test]
fn both_schedulers_are_equivalent_at_light_load() {
    // Fig. 8: at 30 ppm both deliver essentially everything — the game
    // only matters once resources get scarce.
    let gt = measure(&SchedulerKind::gt_tsch_default(), 30.0, 3);
    let orch = measure(&SchedulerKind::orchestra_default(), 30.0, 3);
    assert!(gt.pdr_percent > 97.0, "GT {:.1}%", gt.pdr_percent);
    assert!(
        orch.pdr_percent > 90.0,
        "Orchestra {:.1}%",
        orch.pdr_percent
    );
}

#[test]
fn gt_tsch_delay_does_not_blow_up_with_load() {
    // Fig. 8b: GT-TSCH's delay stays in the hundreds of ms and *drops*
    // at the highest rate (more Tx cells allocated).
    let d75 = measure(&SchedulerKind::gt_tsch_default(), 75.0, 4).delay_ms;
    let d165 = measure(&SchedulerKind::gt_tsch_default(), 165.0, 4).delay_ms;
    assert!(d75 < 600.0, "delay at 75 ppm: {d75:.0} ms");
    assert!(
        d165 < d75 * 1.5,
        "delay must not explode: {d75:.0} → {d165:.0} ms"
    );
}

#[test]
fn gt_tsch_scales_with_dodag_size_where_orchestra_does_not() {
    // Fig. 9a at 8 nodes/DODAG, 120 ppm: GT-TSCH keeps PDR high while
    // Orchestra's single receiver-based Rx slot saturates.
    let at_8 = |scheduler: SchedulerKind| {
        Experiment::new(ScenarioSpec::two_dodag(8), scheduler)
            .with_run(spec(120.0, 5))
            .run()
            .row
    };
    let gt = at_8(SchedulerKind::gt_tsch_default());
    let orch = at_8(SchedulerKind::orchestra_default());
    assert!(
        gt.pdr_percent > 90.0,
        "GT at 8/DODAG: {:.1}%",
        gt.pdr_percent
    );
    assert!(
        orch.pdr_percent < gt.pdr_percent - 25.0,
        "Orchestra at 8/DODAG: {:.1}% vs GT {:.1}%",
        orch.pdr_percent,
        gt.pdr_percent
    );
}

#[test]
fn retransmissions_are_capped_at_four() {
    // Table II: macMaxFrameRetries = 4 — every frame is transmitted at
    // most 5 times, then dropped. Asserted on the wire, not on internal
    // counters: a frame tap builds a per-(transmitter, packet) attempt
    // histogram from the resolved transmissions themselves. A 2-node
    // line keeps every data frame single-hop (one transmitter per
    // packet id, so the histogram is exactly the MAC's retry count) and
    // the Wi-Fi-like noise bursts force real retransmissions.
    let exp = Experiment::new(
        ScenarioSpec::line(2, 30.0),
        SchedulerKind::gt_tsch_default(),
    )
    .with_run(spec(120.0, 7))
    .with_overlay(Overlay::Noise(NoiseBurst::wifi_like()));
    let mut net = exp.build_network();
    let (tap, counts) = gtt_frame::AttemptLog::new();
    net.set_frame_tap(Some(Box::new(tap)));
    exp.run_on(&mut net);
    net.set_frame_tap(None); // drop the tap's handle on the histogram
    let counts = std::sync::Arc::try_unwrap(counts)
        .expect("tap dropped")
        .into_inner()
        .expect("attempt histogram poisoned");

    assert!(!counts.is_empty(), "no unicast data frames were captured");
    let max = counts.values().copied().max().unwrap_or(0);
    assert!(
        counts.values().all(|&c| (1..=5).contains(&c)),
        "a frame was transmitted {max} times — the cap is max_retries + 1 = 5"
    );
    assert!(
        counts.values().any(|&c| c > 1),
        "noise bursts must force at least one retransmission for the cap to bite"
    );
}

#[test]
fn fig10_longer_slotframes_hurt_orchestra_more() {
    // Fig. 10a: Orchestra's PDR drops fast as its unicast slotframe
    // grows (fewer Rx opportunities per second); GT-TSCH stays usable.
    let long_run = |scheduler: SchedulerKind| {
        Experiment::new(ScenarioSpec::two_dodag(6), scheduler)
            .with_run(spec(120.0, 6))
            .run()
            .row
    };
    let gt_long = long_run(SchedulerKind::GtTsch(
        gt_tsch::GtTschConfig::with_slotframe_len(80),
    ));
    let orch_long = long_run(SchedulerKind::Orchestra(
        gtt_orchestra::OrchestraConfig::with_unicast_len(20),
    ));
    assert!(
        gt_long.pdr_percent > 75.0,
        "GT-TSCH at slotframe 80: {:.1}%",
        gt_long.pdr_percent
    );
    assert!(
        orch_long.pdr_percent < 50.0,
        "Orchestra at unicast 20: {:.1}%",
        orch_long.pdr_percent
    );
}
